package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// Multiplexed peer transport: the concurrent-inference half of the cluster
// runtime. The paper's protocol is strictly one-in-flight per peer link —
// fine for a single sensing loop, fatal for multi-user traffic, where every
// concurrent Master.Infer serializes behind the previous one no matter how
// much parallel capacity the worker's snapshot has. A muxClient pipelines
// instead:
//
//	waiters ──▶ window (bounded in-flight) ──▶ writer goroutine ──▶ TCP
//	waiters ◀── pending map (by request id) ◀── reader goroutine ◀── TCP
//
// Every request is tagged with a uint32 id (MsgPredictMux), the worker
// runs them concurrently against its frozen snapshot and replies out of order
// (MsgResultMux / MsgErrorMux), and the single reader matches replies back
// to waiters. One TCP connection per peer carries the whole pipeline.
//
// Failure semantics integrate with the supervisor state machine: a link
// failure (read/write error, per-request timeout) tears the client down,
// fails every pending request with the same error, and feeds the breaker
// exactly once — not once per waiter. A peer that answers the first mux
// frame with a serial MsgError — or closes a freshly dialed link before any
// reply — is a pre-mux build; the peerConn sticky-downgrades it to the
// serial protocol so mixed-version fleets interoperate (DESIGN.md §8). A
// silent close on an ADOPTED connection is not trusted as a downgrade
// signal: the socket may be stale (worker restarted since Connect), so it
// counts as a link fault and the retry probes again on a fresh dial.

// muxWindow bounds the in-flight requests one mux link may carry. Beyond
// it, waiters queue (reported by the mux.queue_depth gauge) — backpressure
// beats unbounded buffering on an edge link.
const muxWindow = 32

// errMuxUnsupported marks a peer that answered the mux probe with the
// serial protocol's error frame (or hung up a freshly dialed link before
// any mux reply): a pre-mux build. The peerConn downgrades to serial and
// retries; the breaker is NOT fed — the peer is alive, just older.
var errMuxUnsupported = errors.New("cluster: peer does not speak the mux protocol")

// muxReply is one matched response delivered to a waiter.
type muxReply struct {
	typ     byte
	payload []byte // mux payload with the id prefix already stripped
	err     error
}

// muxClient pipelines requests onto one connection: single writer
// goroutine, single reader goroutine, pending-request map, bounded
// in-flight window.
type muxClient struct {
	conn     net.Conn
	fresh    bool // conn was dialed for this client, not adopted
	reqType  byte // frame type of outgoing requests (MsgPredictMux on peer links)
	resType  byte // frame type of matched replies (MsgResultMux on peer links)
	writeCh  chan muxWrite
	window   chan struct{} // in-flight slots
	inflight *metrics.Gauge
	queued   *metrics.Gauge
	onDown   func(error) // supervision hook; called exactly once
	downOnce sync.Once

	mu          sync.Mutex
	pending     map[uint32]chan muxReply
	nextID      uint32
	established bool // a mux reply has been seen on this link
	down        bool
	downErr     error
	downCh      chan struct{} // closed when the link dies
}

type muxWrite struct {
	typ     byte
	id      uint32
	payload []byte
}

// newMuxClient takes ownership of conn and starts the writer and reader.
// fresh records whether conn was dialed for this client: only a fresh link
// that closes before any reply is a trustworthy pre-mux-build signal — an
// adopted connection may simply be stale (worker restarted since Connect).
func newMuxClient(conn net.Conn, fresh bool, inflight, queued *metrics.Gauge, onDown func(error)) *muxClient {
	return newMuxClientTyped(conn, fresh, MsgPredictMux, MsgResultMux, inflight, queued, onDown)
}

// newMuxClientTyped is newMuxClient with the request/reply frame types made
// explicit, so the same pipeline drives both the master→worker peer link
// (MsgPredictMux/MsgResultMux) and the gateway→master fabric link
// (MsgFabricPredict/MsgFabricResult). Error replies are MsgErrorMux on both.
func newMuxClientTyped(conn net.Conn, fresh bool, reqType, resType byte, inflight, queued *metrics.Gauge, onDown func(error)) *muxClient {
	mc := &muxClient{
		conn:     conn,
		fresh:    fresh,
		reqType:  reqType,
		resType:  resType,
		writeCh:  make(chan muxWrite),
		window:   make(chan struct{}, muxWindow),
		inflight: inflight,
		queued:   queued,
		onDown:   onDown,
		pending:  make(map[uint32]chan muxReply),
		downCh:   make(chan struct{}),
	}
	go mc.writeLoop()
	go mc.readLoop()
	return mc
}

// alive reports whether the link can still accept requests.
func (mc *muxClient) alive() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return !mc.down
}

// fail tears the link down once: close the connection (unblocking both
// loops), deliver err to every pending waiter, and run the supervision
// hook. Concurrent callers collapse into the first.
func (mc *muxClient) fail(err error) {
	mc.downOnce.Do(func() {
		mc.mu.Lock()
		mc.down = true
		mc.downErr = err
		pending := mc.pending
		mc.pending = make(map[uint32]chan muxReply)
		close(mc.downCh)
		mc.mu.Unlock()
		mc.conn.Close()
		for _, ch := range pending {
			ch <- muxReply{err: err}
		}
		if mc.onDown != nil {
			mc.onDown(err)
		}
	})
}

// close shuts the link down without feeding the supervisor — master
// shutdown, not a failure.
func (mc *muxClient) close() {
	mc.downOnce.Do(func() {
		mc.mu.Lock()
		mc.down = true
		mc.downErr = errors.New("cluster: mux client closed")
		pending := mc.pending
		mc.pending = make(map[uint32]chan muxReply)
		close(mc.downCh)
		mc.mu.Unlock()
		mc.conn.Close()
		for _, ch := range pending {
			ch <- muxReply{err: mc.downErr}
		}
	})
}

// writeLoop is the single writer: it owns the connection's write side.
func (mc *muxClient) writeLoop() {
	for {
		select {
		case w := <-mc.writeCh:
			if err := transport.WriteFrame(mc.conn, w.typ, appendMuxID(w.id, w.payload)); err != nil {
				mc.fail(fmt.Errorf("cluster: mux write: %w", err))
				return
			}
		case <-mc.downCh:
			return
		}
	}
}

// readLoop is the single reader: it matches replies to pending waiters.
// A serial-protocol frame before the first mux reply means the peer is a
// pre-mux build → downgrade; afterwards it is link corruption → failure.
func (mc *muxClient) readLoop() {
	for {
		typ, payload, err := transport.ReadFrame(mc.conn)
		if err != nil {
			if !mc.sawReply() && mc.fresh {
				// A freshly dialed peer hung up on our first mux frame
				// without ever answering: a pre-mux build closing on an
				// unknown frame type.
				mc.fail(errMuxUnsupported)
			} else {
				// Established pipeline died — or an ADOPTED connection (the
				// eager dial from Connect) dropped before any reply. The
				// latter is ambiguous: the socket may just be stale because
				// the worker restarted since Connect. Either way it is a
				// link fault; the retry redials fresh, and a genuine pre-mux
				// build will answer that probe with a serial MsgError.
				mc.fail(fmt.Errorf("cluster: mux read: %w", err))
			}
			return
		}
		switch typ {
		case mc.resType, MsgSplitResult, MsgErrorMux:
			id, rest, perr := splitMuxID(payload)
			if perr != nil {
				mc.fail(perr)
				return
			}
			mc.deliver(id, muxReply{typ: typ, payload: rest})
		case MsgError:
			if !mc.sawReply() {
				mc.fail(errMuxUnsupported)
				return
			}
			mc.fail(fmt.Errorf("cluster: serial error frame on mux link: %s", payload))
			return
		default:
			mc.fail(fmt.Errorf("cluster: unexpected frame type %d on mux link", typ))
			return
		}
	}
}

// sawReply reports whether any mux reply has arrived on this link.
func (mc *muxClient) sawReply() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.established
}

// deliver hands one matched reply to its waiter; replies to ids nobody
// waits for (a request that timed out) are dropped on the floor.
func (mc *muxClient) deliver(id uint32, r muxReply) {
	mc.mu.Lock()
	mc.established = true
	ch, ok := mc.pending[id]
	delete(mc.pending, id)
	mc.mu.Unlock()
	if ok {
		ch <- r
	}
}

// register allocates a request id and its reply channel.
func (mc *muxClient) register() (uint32, chan muxReply, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.down {
		return 0, nil, mc.downErr
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan muxReply, 1)
	mc.pending[id] = ch
	return id, ch, nil
}

// unregister abandons a request (timeout, shutdown); its late reply, if it
// ever arrives, is dropped.
func (mc *muxClient) unregister(id uint32) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// roundTrip pipelines one request: acquire a window slot, send, await the
// matched reply within timeout. done aborts the waits — it merges master
// shutdown with the caller's ctx cancellation (joinDone); abortErr(ctx)
// names which one fired. A caller abort abandons only this request (the
// late reply is dropped, the link stays up), whereas a timeout is a link
// failure — with requests pipelined behind each other a stalled link wedges
// them all, so it is torn down (and the breaker fed once) like any other
// link fault, mirroring the serial path's conn drop.
func (mc *muxClient) roundTrip(ctx context.Context, payload []byte, timeout time.Duration, done <-chan struct{}) (muxReply, time.Duration, error) {
	return mc.roundTripTyped(ctx, mc.reqType, payload, timeout, done)
}

// roundTripTyped is roundTrip with an explicit request frame type, so
// secondary request kinds (MsgSplitPredict) share a link's pipeline, window
// and failure semantics with its primary traffic instead of opening a
// second connection per peer.
func (mc *muxClient) roundTripTyped(ctx context.Context, reqType byte, payload []byte, timeout time.Duration, done <-chan struct{}) (muxReply, time.Duration, error) {
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutCh = timer.C
		defer timer.Stop()
	}

	// Window slot: bounded in-flight, queueing reported by the gauge.
	mc.queued.Inc()
	select {
	case mc.window <- struct{}{}:
		mc.queued.Dec()
	case <-mc.downCh:
		mc.queued.Dec()
		return muxReply{}, 0, mc.downError()
	case <-timeoutCh:
		mc.queued.Dec()
		err := fmt.Errorf("cluster: mux window wait exceeded %v", timeout)
		mc.fail(err)
		return muxReply{}, 0, err
	case <-done:
		mc.queued.Dec()
		return muxReply{}, 0, abortErr(ctx)
	}
	mc.inflight.Inc()
	defer func() {
		mc.inflight.Dec()
		<-mc.window
	}()

	id, ch, err := mc.register()
	if err != nil {
		return muxReply{}, 0, err
	}
	start := time.Now()
	select {
	case mc.writeCh <- muxWrite{typ: reqType, id: id, payload: payload}:
	case <-mc.downCh:
		mc.unregister(id)
		return muxReply{}, 0, mc.downError()
	case <-done:
		mc.unregister(id)
		return muxReply{}, 0, abortErr(ctx)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return muxReply{}, time.Since(start), r.err
		}
		return r, time.Since(start), nil
	case <-timeoutCh:
		mc.unregister(id)
		err := fmt.Errorf("cluster: mux request %d exceeded %v", id, timeout)
		mc.fail(err)
		return muxReply{}, time.Since(start), err
	case <-done:
		mc.unregister(id)
		return muxReply{}, time.Since(start), abortErr(ctx)
	}
}

// downError returns the error the link died with.
func (mc *muxClient) downError() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.downErr != nil {
		return mc.downErr
	}
	return errors.New("cluster: mux link down")
}

// --- peerConn integration -------------------------------------------------

// muxOutcome classifies one mux attempt for the supervisor's accounting.
type muxOutcome int

const (
	muxOK          muxOutcome = iota
	muxWorkerErr              // live peer answered with an error: no retry, no breaker
	muxLinkFault              // link died; the breaker was already fed once by muxLinkDown
	muxDialFault              // dial failed before a client existed; caller feeds the breaker
	muxCallerAbort            // the caller's ctx expired/cancelled: no retry, no breaker
)

// muxEligible reports whether this peer is still on the mux protocol:
// neither sticky-downgraded (pre-mux peer) nor disabled via SetMux.
func (p *peerConn) muxEligible() bool {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return !p.serialOnly && !p.muxOff
}

// markSerialOnly sticky-downgrades the peer to the serial protocol.
func (p *peerConn) markSerialOnly() {
	p.counter("mux_downgrades").Inc()
	p.stateMu.Lock()
	p.serialOnly = true
	p.stateMu.Unlock()
}

// markMuxProven records that the peer has answered on the mux protocol —
// from then on an early close is a link fault, never a downgrade signal.
func (p *peerConn) markMuxProven() {
	p.stateMu.Lock()
	p.muxProven = true
	p.stateMu.Unlock()
}

func (p *peerConn) isMuxProven() bool {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return p.muxProven
}

// muxGauge resolves a master-wide mux gauge; nil-safe for hand-built test
// peers.
func (p *peerConn) muxGauge(name string) *metrics.Gauge {
	if p.gauges == nil {
		return new(metrics.Gauge)
	}
	return p.gauges.Gauge(name)
}

// muxLinkDown is the supervision hook a dying mux link runs exactly once:
// a pre-mux peer (never proven) downgrades without feeding the breaker; a
// real link fault counts as ONE failure no matter how many requests were
// pending on the pipeline.
func (p *peerConn) muxLinkDown(err error) {
	if errors.Is(err, errMuxUnsupported) && !p.isMuxProven() {
		p.markSerialOnly()
		return
	}
	p.recordFailure()
}

// closeMux tears the mux link down on master shutdown (no breaker).
func (p *peerConn) closeMux() {
	p.muxMu.Lock()
	mc := p.muxc
	p.muxMu.Unlock()
	if mc != nil {
		mc.close()
	}
}

// muxEnsure returns the live mux client, building one if the previous link
// died: it adopts the peer's idle control connection when present (the
// eager dial from Connect), else redials. dialed reports whether this call
// dialed, for span attribution.
func (p *peerConn) muxEnsure(cfg SupervisorConfig) (mc *muxClient, dialed bool, err error) {
	p.muxMu.Lock()
	defer p.muxMu.Unlock()
	if p.muxc != nil && p.muxc.alive() {
		return p.muxc, false, nil
	}
	p.mu.Lock()
	conn := p.conn
	p.conn = nil
	p.mu.Unlock()
	if conn == nil {
		p.counter("redials").Inc()
		c, derr := transport.Dial(p.addr, cfg.DialTimeout)
		if derr != nil {
			return nil, true, derr
		}
		conn = c
		dialed = true
	}
	p.muxc = newMuxClient(conn, dialed, p.muxGauge("mux.inflight"), p.muxGauge("mux.queue_depth"), p.muxLinkDown)
	return p.muxc, dialed, nil
}

// muxTimeout reads the per-request deadline under the conn lock.
func (p *peerConn) muxTimeout() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeout
}

// muxAttempts is the mux-path counterpart of doAttempts: the same bounded
// retry loop and span emission, with breaker accounting shifted onto the
// link-down hook so a failure with N pipelined requests costs one strike,
// not N. A caller-cancelled ctx (muxCallerAbort) abandons the request
// without retrying or feeding the breaker — the link stays up.
func (p *peerConn) muxAttempts(ctx context.Context, done <-chan struct{}, cfg SupervisorConfig, tr *trace.Tracer, peerCtx trace.Context, payload []byte) (PredictResult, error) {
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if !p.allowSpend("retry") {
				break // budget dry: no speculative traffic during a brownout
			}
			p.counter("retries").Inc()
			backoffStart := time.Now()
			if !cfg.RetryBackoff.Sleep(attempt-1, done) {
				if err := ctx.Err(); err != nil {
					return PredictResult{}, err
				}
				break // master closing
			}
			tr.Record(peerCtx, "backoff", "", "", backoffStart, time.Since(backoffStart))
			if !p.available() {
				break // breaker tripped while we backed off
			}
			if !p.muxEligible() {
				return PredictResult{}, errMuxUnsupported // downgraded while backing off
			}
		}
		res, tm, err, outcome := p.muxOnce(ctx, done, cfg, payload)
		p.emitAttempt(tr, peerCtx, tm, err)
		if err == nil {
			p.recordSuccess()
			return res, nil
		}
		if errors.Is(err, errMuxUnsupported) && !p.isMuxProven() {
			return PredictResult{}, errMuxUnsupported // do() falls back to serial
		}
		lastErr = err
		switch outcome {
		case muxWorkerErr:
			// The worker answered; the request itself is bad. No retry,
			// no breaker accounting.
			return PredictResult{}, err
		case muxCallerAbort:
			// The caller's deadline fired or it was cancelled: the peer did
			// nothing wrong. No retry, no breaker accounting.
			return PredictResult{}, err
		case muxDialFault:
			p.recordFailure()
		case muxLinkFault:
			// Already counted once by muxLinkDown.
		}
	}
	return PredictResult{}, fmt.Errorf("cluster: peer %s: %w", p.addr, lastErr)
}

// muxOnce performs one pipelined round trip.
func (p *peerConn) muxOnce(ctx context.Context, done <-chan struct{}, cfg SupervisorConfig, payload []byte) (PredictResult, attemptTiming, error, muxOutcome) {
	var tm attemptTiming
	dialStart := time.Now()
	mc, dialed, err := p.muxEnsure(cfg)
	if dialed {
		tm.dialed = true
		tm.dialStart = dialStart
		tm.dialDur = time.Since(dialStart)
	}
	if err != nil {
		return PredictResult{}, tm, err, muxDialFault
	}
	p.counter("requests").Inc()
	tm.rttStart = time.Now()
	r, rtt, err := mc.roundTrip(ctx, payload, p.muxTimeout(), done)
	tm.rtt = rtt
	if err != nil {
		if ctx.Err() != nil {
			return PredictResult{}, tm, err, muxCallerAbort
		}
		return PredictResult{}, tm, err, muxLinkFault
	}
	p.markMuxProven()
	if r.typ == MsgErrorMux {
		return PredictResult{}, tm, fmt.Errorf("worker error: %s", r.payload), muxWorkerErr
	}
	res, rest, derr := decodeResultRest(r.payload)
	if derr != nil {
		// Undecodable result: corrupted link, not a bad request — tear the
		// pipeline down like the serial path drops its conn.
		mc.fail(derr)
		return PredictResult{}, tm, derr, muxLinkFault
	}
	tm.remote, _ = extractComputeTime(rest)
	return res, tm, nil, muxOK
}
