package cluster

// Fabric wire codec: the gateway→master inference frames. A fabric request
// is mux-pipelined like a peer predict, but it asks for the *combined*
// ensemble answer — the master runs the whole broadcast/gather/arg-min
// pipeline and replies with probabilities, winners and the live/total
// quorum, which is exactly what the serve gateway's Backend contract needs
// (the gateway recomputes entropies itself when batching).
//
// Request payload (after the 4-byte mux id):
//
//	mode    u8   — 0 strict (InferContext), 1 quorum (InferQuorumContext)
//	soft    u64  — quorum soft deadline, ns (0 = none; strict ignores it)
//	budget  u64  — overall deadline, ns (0 = none); the server bounds its
//	               ctx with it so a gateway deadline propagates across the
//	               wire without clock sync
//	tensor  ...  — transport.EncodeTensor(x)
//
// Reply payload (after the mux id):
//
//	live    u16  — nodes that answered
//	total   u16  — ensemble size (live < total ⇒ degraded)
//	n       u32  — row count
//	winners i32×n
//	tensor  ...  — combined probabilities

import (
	"encoding/binary"
	"fmt"

	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// Fabric request modes.
const (
	fabricModeStrict byte = 0
	fabricModeQuorum byte = 1
)

// fabricHeaderSize is mode + soft + budget.
const fabricHeaderSize = 1 + 8 + 8

// encodeFabricRequest builds a fabric request body (without the mux id).
func encodeFabricRequest(mode byte, softNs, budgetNs uint64, x *tensor.Tensor) []byte {
	tb := transport.EncodeTensor(x)
	out := make([]byte, fabricHeaderSize, fabricHeaderSize+len(tb))
	out[0] = mode
	binary.BigEndian.PutUint64(out[1:9], softNs)
	binary.BigEndian.PutUint64(out[9:17], budgetNs)
	return append(out, tb...)
}

// decodeFabricRequest parses a fabric request body.
func decodeFabricRequest(body []byte) (mode byte, softNs, budgetNs uint64, x *tensor.Tensor, err error) {
	if len(body) < fabricHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("cluster: fabric request %d bytes, need %d header", len(body), fabricHeaderSize)
	}
	mode = body[0]
	if mode != fabricModeStrict && mode != fabricModeQuorum {
		return 0, 0, 0, nil, fmt.Errorf("cluster: fabric request mode %d", mode)
	}
	softNs = binary.BigEndian.Uint64(body[1:9])
	budgetNs = binary.BigEndian.Uint64(body[9:17])
	x, _, err = transport.DecodeTensor(body[fabricHeaderSize:])
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("cluster: fabric request tensor: %w", err)
	}
	return mode, softNs, budgetNs, x, nil
}

// encodeFabricResult builds a fabric reply body (without the mux id).
func encodeFabricResult(probs *tensor.Tensor, winners []int, live, total int) []byte {
	tb := transport.EncodeTensor(probs)
	out := make([]byte, 0, 2+2+4+4*len(winners)+len(tb))
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(live))
	out = append(out, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], uint16(total))
	out = append(out, u16[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(winners)))
	out = append(out, u32[:]...)
	for _, w := range winners {
		binary.BigEndian.PutUint32(u32[:], uint32(int32(w)))
		out = append(out, u32[:]...)
	}
	return append(out, tb...)
}

// decodeFabricResult parses a fabric reply body.
func decodeFabricResult(body []byte) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	if len(body) < 8 {
		return nil, nil, 0, 0, fmt.Errorf("cluster: fabric result %d bytes", len(body))
	}
	live = int(binary.BigEndian.Uint16(body[0:2]))
	total = int(binary.BigEndian.Uint16(body[2:4]))
	n := int(binary.BigEndian.Uint32(body[4:8]))
	rest := body[8:]
	if n < 0 || len(rest) < 4*n {
		return nil, nil, 0, 0, fmt.Errorf("cluster: fabric result %d winners, %d bytes left", n, len(rest))
	}
	winners = make([]int, n)
	for i := range winners {
		winners[i] = int(int32(binary.BigEndian.Uint32(rest[4*i:])))
	}
	probs, _, err = transport.DecodeTensor(rest[4*n:])
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("cluster: fabric result probs: %w", err)
	}
	if probs.Shape[0] != n {
		return nil, nil, 0, 0, fmt.Errorf("cluster: fabric result rows %d != winners %d", probs.Shape[0], n)
	}
	return probs, winners, live, total, nil
}
