package cluster

// RemoteMaster is the gateway-side client for one MasterServer: it
// satisfies the serve package's Backend and DegradedBackend contracts
// (structurally — serve never imports cluster types) over a single
// mux-pipelined TCP connection, so a gateway can treat a master three hops
// away exactly like an in-process one. The link self-heals: a dead pipeline
// fails every pending request once, and the next call redials fresh.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// RemoteMaster pipelines fabric inferences to one master address.
type RemoteMaster struct {
	addr     string
	timeout  time.Duration // per-request link deadline; 0 = none
	counters *metrics.CounterSet
	gauges   *metrics.GaugeSet

	mu     sync.Mutex
	muxc   *muxClient
	closed bool
}

// NewRemoteMaster returns a client for the master serving at addr. Nothing
// is dialed until the first call; timeout bounds each round trip (a stalled
// pipeline is torn down and redialed, like the peer mux link).
func NewRemoteMaster(addr string, timeout time.Duration) *RemoteMaster {
	return &RemoteMaster{
		addr:     addr,
		timeout:  timeout,
		counters: metrics.NewCounterSet(),
		gauges:   metrics.NewGaugeSet(),
	}
}

// Addr returns the target master's address.
func (r *RemoteMaster) Addr() string { return r.addr }

// Counters exposes the client's counters ("fabric.requests",
// "fabric.errors", "fabric.redials").
func (r *RemoteMaster) Counters() *metrics.CounterSet { return r.counters }

// Gauges exposes "fabric.inflight" and "fabric.queue_depth".
func (r *RemoteMaster) Gauges() *metrics.GaugeSet { return r.gauges }

// ensure returns a live mux client, dialing a fresh connection if the
// previous pipeline died.
func (r *RemoteMaster) ensure() (*muxClient, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("cluster: remote master %s is closed", r.addr)
	}
	if r.muxc != nil && r.muxc.alive() {
		return r.muxc, nil
	}
	if r.muxc != nil {
		r.counters.Counter("fabric.redials").Inc()
	}
	conn, err := transport.Dial(r.addr, r.timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: remote master dial %s: %w", r.addr, err)
	}
	r.muxc = newMuxClientTyped(conn, true, MsgFabricPredict, MsgFabricResult,
		r.gauges.Gauge("fabric.inflight"), r.gauges.Gauge("fabric.queue_depth"),
		func(error) { r.counters.Counter("fabric.link_down").Inc() })
	return r.muxc, nil
}

// call performs one fabric round trip.
func (r *RemoteMaster) call(ctx context.Context, mode byte, soft time.Duration, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, 0, err
	}
	mc, err := r.ensure()
	if err != nil {
		r.counters.Counter("fabric.errors").Inc()
		return nil, nil, 0, 0, err
	}
	// The caller's remaining deadline rides in the request as a budget, so
	// the master bounds its own gather without clock synchronization.
	var budgetNs uint64
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			budgetNs = uint64(rem)
		}
	}
	var softNs uint64
	if soft > 0 {
		softNs = uint64(soft)
	}
	r.counters.Counter("fabric.requests").Inc()
	payload := encodeFabricRequest(mode, softNs, budgetNs, x)
	reply, _, err := mc.roundTrip(ctx, payload, r.timeout, ctx.Done())
	if err != nil {
		r.counters.Counter("fabric.errors").Inc()
		return nil, nil, 0, 0, err
	}
	if reply.typ == MsgErrorMux {
		r.counters.Counter("fabric.errors").Inc()
		return nil, nil, 0, 0, fmt.Errorf("cluster: master %s: %s", r.addr, reply.payload)
	}
	probs, winners, live, total, err = decodeFabricResult(reply.payload)
	if err != nil {
		// Undecodable reply: corrupted pipeline, tear it down like the
		// peer mux path does.
		mc.fail(err)
		r.counters.Counter("fabric.errors").Inc()
		return nil, nil, 0, 0, err
	}
	return probs, winners, live, total, nil
}

// InferContext asks the master for a strict full-ensemble inference
// (serve.Backend contract).
func (r *RemoteMaster) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	probs, winners, _, _, err := r.call(ctx, fabricModeStrict, 0, x)
	return probs, winners, err
}

// InferQuorumContext asks the master for a partial-quorum inference
// (serve.DegradedBackend contract): the master answers with whatever subset
// replied once soft elapses, and live < total marks the answer degraded.
func (r *RemoteMaster) InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	return r.call(ctx, fabricModeQuorum, soft, x)
}

// Close tears the pipeline down; pending requests fail promptly.
func (r *RemoteMaster) Close() error {
	r.mu.Lock()
	r.closed = true
	mc := r.muxc
	r.muxc = nil
	r.mu.Unlock()
	if mc != nil {
		mc.close()
	}
	return nil
}
