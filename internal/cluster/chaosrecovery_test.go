package cluster

import (
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/chaos"
	"github.com/teamnet/teamnet/internal/tensor"
)

// Failure-matrix tests: the supervised runtime against the chaos proxy's
// fault modes. Each test puts one worker behind a misbehaving proxy and
// asserts the two degraded-mode invariants — InferBestEffort keeps
// answering with reduced live, and a quarantined peer rejoins rotation once
// the link heals — all under -race (see the verify target).

// chaosWorker starts a worker and a chaos proxy in front of it, returning
// the proxy (route master traffic through proxy address).
func chaosWorker(t *testing.T, seed int64, id int, plan ...chaos.Fault) (*chaos.Proxy, string) {
	t.Helper()
	w := NewWorker(tinyExpert(t, seed), id)
	workerAddr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	p := chaos.New(workerAddr, plan...)
	proxyAddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, proxyAddr
}

// healthyWorker starts a plain worker.
func healthyWorker(t *testing.T, seed int64, id int) string {
	t.Helper()
	w := NewWorker(tinyExpert(t, seed), id)
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return addr
}

func TestBestEffortUnderConnectionResets(t *testing.T) {
	_, sick := chaosWorker(t, 70, 1, chaos.Fault{Mode: chaos.Reset, Prob: 1})
	good := healthyWorker(t, 71, 2)

	master := NewMaster(tinyExpert(t, 72), 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(300 * time.Millisecond)
	for _, a := range []string{sick, good} {
		if err := master.Connect(a); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.NewRNG(73).Randn(1, 4)
	for i := 0; i < 6; i++ {
		probs, winners, live, err := master.InferBestEffort(x)
		if err != nil {
			t.Fatalf("query %d failed under resets: %v", i, err)
		}
		if live < 2 {
			t.Fatalf("query %d: live = %d, want ≥ 2 (local + healthy worker)", i, live)
		}
		if winners[0] == 1 {
			t.Fatalf("query %d won by the reset-everything peer", i)
		}
		if probs.HasNaN() {
			t.Fatalf("query %d produced NaN under resets", i)
		}
	}
	if h := master.Health()[0]; h.State != PeerOpen && h.State != PeerHalfOpen {
		t.Fatalf("reset-everything peer not quarantined: %+v", h)
	}
}

func TestBestEffortUnderStall(t *testing.T) {
	_, sick := chaosWorker(t, 74, 1, chaos.Fault{Mode: chaos.Stall, Prob: 1})
	good := healthyWorker(t, 75, 2)

	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(100 * time.Millisecond) // bounds every stalled read
	for _, a := range []string{sick, good} {
		if err := master.Connect(a); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.NewRNG(76).Randn(1, 4)
	for i := 0; i < 4; i++ {
		start := time.Now()
		_, _, live, err := master.InferBestEffort(x)
		if err != nil {
			t.Fatalf("query %d failed under stall: %v", i, err)
		}
		if live < 1 {
			t.Fatalf("query %d: live = %d", i, live)
		}
		// Two attempts × 100ms deadline + backoff: a stalled peer may slow
		// a query but never wedge it.
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("query %d took %v under stall", i, elapsed)
		}
	}
}

func TestBestEffortUnderCorruption(t *testing.T) {
	_, sick := chaosWorker(t, 77, 1, chaos.Fault{Mode: chaos.Corrupt, Prob: 1})
	good := healthyWorker(t, 78, 2)

	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(300 * time.Millisecond)
	for _, a := range []string{sick, good} {
		if err := master.Connect(a); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.NewRNG(79).Randn(1, 4)
	for i := 0; i < 6; i++ {
		_, _, live, err := master.InferBestEffort(x)
		if err != nil {
			t.Fatalf("query %d failed under corruption: %v", i, err)
		}
		if live < 1 {
			t.Fatalf("query %d: live = %d", i, live)
		}
	}
}

func TestSlowPeerRecoversAfterHeal(t *testing.T) {
	// Slow-then-recover: a peer behind 150ms injected latency against a
	// 50ms deadline times out into quarantine; healing the link must bring
	// it back without touching the master.
	proxy, sick := chaosWorker(t, 80, 1, chaos.Fault{Mode: chaos.Latency, Delay: 150 * time.Millisecond})
	good := healthyWorker(t, 81, 2)

	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(50 * time.Millisecond)
	for _, a := range []string{sick, good} {
		if err := master.Connect(a); err != nil {
			t.Fatal(err)
		}
	}
	x := tensor.NewRNG(82).Randn(1, 4)
	for i := 0; i < 4; i++ {
		if _, _, live, err := master.InferBestEffort(x); err != nil || live < 1 {
			t.Fatalf("query %d under latency: live=%d err=%v", i, live, err)
		}
	}
	if h := master.Health()[0]; h.State != PeerOpen && h.State != PeerHalfOpen {
		t.Fatalf("slow peer not quarantined: %+v", h)
	}

	proxy.Heal()
	waitForPeerState(t, master, 0, PeerHealthy, 5*time.Second)
	_, _, live, err := master.InferBestEffort(x)
	if err != nil {
		t.Fatal(err)
	}
	if live != 2 {
		t.Fatalf("live after heal = %d, want 2", live)
	}
}

// TestEndToEndChaosRecovery is the acceptance scenario: three workers, one
// behind a proxy injecting 30% connection resets and 30% stalls. Every
// request must be served with live ≥ 2, the sick peer's breaker must open,
// and after the proxy heals the peer must rejoin rotation within the probe
// interval — no restarts, no hangs.
func TestEndToEndChaosRecovery(t *testing.T) {
	proxy, sick := chaosWorker(t, 83, 1,
		chaos.Fault{Mode: chaos.Reset, Prob: 0.3},
		chaos.Fault{Mode: chaos.Stall, Prob: 0.3},
	)
	good1 := healthyWorker(t, 84, 2)
	good2 := healthyWorker(t, 85, 3)

	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(100 * time.Millisecond)
	for _, a := range []string{sick, good1, good2} {
		if err := master.Connect(a); err != nil {
			t.Fatal(err)
		}
	}

	x := tensor.NewRNG(86).Randn(1, 4)
	tripped := false
	for i := 0; i < 40; i++ {
		probs, _, live, err := master.InferBestEffort(x)
		if err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
		if live < 2 {
			t.Fatalf("query %d: live = %d, want ≥ 2", i, live)
		}
		if probs.HasNaN() {
			t.Fatalf("query %d produced NaN", i)
		}
		if master.Health()[0].State == PeerOpen || master.Health()[0].Trips > 0 {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatalf("sick peer's breaker never opened under 30%% resets + stalls: %+v", master.Health()[0])
	}

	// Heal the link: the probe loop must re-admit the peer within its
	// backoff ceiling (100ms in the test policy; allow scheduler slack).
	proxy.Heal()
	waitForPeerState(t, master, 0, PeerHealthy, 5*time.Second)
	h := master.Health()[0]
	if h.Reconnects == 0 || h.Probes == 0 {
		t.Fatalf("re-admission left no probe trace: %+v", h)
	}

	// Full strength restored.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, live, err := master.InferBestEffort(x)
		if err != nil {
			t.Fatal(err)
		}
		if live == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live never returned to 3 after heal (last %d)", live)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
