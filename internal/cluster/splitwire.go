package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// Partial-offload wire frames (DESIGN.md §13). A MsgSplitPredict payload
// carries the model version the head was computed against, the split
// index, and the intermediate activation at full float64 precision; the
// peer finishes the tail [split, Steps) from its atomic snapshot pointer
// and answers MsgSplitResult with full-precision probabilities +
// entropies. Both directions avoid the query path's float32 quantization
// because the split contract promises the distributed answer is
// bit-identical to the full local forward.
//
// Version mismatches are a first-class outcome, not a generic error: a
// mid-rollout fleet has heads and tails from different model versions for
// a few seconds, and executing a tail against the wrong weights would
// produce a confidently wrong answer. The server refuses with a typed,
// wire-recognizable error and the caller degrades to whole-query offload
// (which carries the raw input, valid against any version).

// ErrSplitVersionMismatch reports that the serving peer's model version
// differs from the version the split head was computed against.
var ErrSplitVersionMismatch = errors.New("cluster: split model version mismatch")

// splitVersionMismatchPrefix is the wire text of a version refusal; the
// client maps it back to ErrSplitVersionMismatch so callers can branch on
// errors.Is across the network boundary.
const splitVersionMismatchPrefix = "split version mismatch: "

// splitErrorFromText rehydrates a worker error string into a typed error.
func splitErrorFromText(text string) error {
	if strings.HasPrefix(text, splitVersionMismatchPrefix) {
		return fmt.Errorf("%w: %s", ErrSplitVersionMismatch, strings.TrimPrefix(text, splitVersionMismatchPrefix))
	}
	return fmt.Errorf("worker error: %s", text)
}

// SplitRequest is a partial-offload request: finish X (the activation at
// boundary Split, batch rows) from step Split onward, provided the served
// model version equals Version.
type SplitRequest struct {
	Version string
	Split   int
	X       *tensor.Tensor
}

// EncodeSplitRequest serializes r: u16 version length + version bytes, u32
// split index, then the full-precision activation tensor.
func EncodeSplitRequest(r SplitRequest) []byte {
	if len(r.Version) > 0xFFFF {
		panic("cluster: split version label exceeds 65535 bytes")
	}
	act := transport.EncodeTensor64(r.X)
	out := make([]byte, 0, 2+len(r.Version)+4+len(act))
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(r.Version)))
	out = append(out, hdr[:]...)
	out = append(out, r.Version...)
	var split [4]byte
	binary.BigEndian.PutUint32(split[:], uint32(r.Split))
	out = append(out, split[:]...)
	return append(out, act...)
}

// DecodeSplitRequest parses a split request, returning the bytes consumed
// (the optional trace trailer rides after them).
func DecodeSplitRequest(payload []byte) (SplitRequest, int, error) {
	if len(payload) < 2 {
		return SplitRequest{}, 0, fmt.Errorf("cluster: split request truncated at version length")
	}
	vlen := int(binary.BigEndian.Uint16(payload))
	off := 2
	if len(payload) < off+vlen+4 {
		return SplitRequest{}, 0, fmt.Errorf("cluster: split request truncated in header")
	}
	version := string(payload[off : off+vlen])
	off += vlen
	split := int(binary.BigEndian.Uint32(payload[off:]))
	off += 4
	x, used, err := transport.DecodeTensor64(payload[off:])
	if err != nil {
		return SplitRequest{}, 0, fmt.Errorf("cluster: split request activation: %w", err)
	}
	return SplitRequest{Version: version, Split: split, X: x}, off + used, nil
}

// encodeSplitResult serializes a full-precision result: float64 probs
// tensor + float64 entropies.
func encodeSplitResult(r PredictResult) []byte {
	probs := transport.EncodeTensor64(r.Probs)
	ent := transport.EncodeFloats(r.Entropy)
	out := make([]byte, 0, len(probs)+len(ent))
	out = append(out, probs...)
	return append(out, ent...)
}

// decodeSplitResultRest parses a split result and returns the trailing
// bytes carrying the compute-timing trailer.
func decodeSplitResultRest(payload []byte) (PredictResult, []byte, error) {
	probs, used, err := transport.DecodeTensor64(payload)
	if err != nil {
		return PredictResult{}, nil, fmt.Errorf("cluster: decode split result probs: %w", err)
	}
	ent, entUsed, err := transport.DecodeFloats(payload[used:])
	if err != nil {
		return PredictResult{}, nil, fmt.Errorf("cluster: decode split result entropy: %w", err)
	}
	if len(probs.Shape) != 2 || probs.Shape[0] != len(ent) {
		return PredictResult{}, nil, fmt.Errorf("cluster: split result rows %v != entropies %d", probs.Shape, len(ent))
	}
	return PredictResult{Probs: probs, Entropy: ent}, payload[used+entUsed:], nil
}

// SplitRequestWireBytes reports the on-wire payload size of a split
// request shipping a batch×width activation — the request half of the
// planner's link cost model.
func SplitRequestWireBytes(batch, width, versionLen int) int {
	return 2 + versionLen + 4 + (1 + 4*2 + 8*batch*width)
}

// SplitResultWireBytes reports the on-wire payload size of a split result
// for a batch — the response half of the planner's link cost model.
func SplitResultWireBytes(batch, classes int) int {
	probs := 1 + 4*2 + 8*batch*classes
	ent := 4 + 8*batch
	return probs + ent
}

// runSplitBody executes one split request against a served snapshot: the
// shared serving body behind MsgSplitPredict on both the worker and the
// master's fabric listener. It returns the encoded MsgSplitResult payload
// (with the compute-timing trailer appended) or an error text for
// MsgErrorMux; a version refusal uses the recognizable mismatch prefix.
func runSplitBody(snap *nn.Snapshot, servedVersion string, body []byte, tracer *tracerRef, hists *metrics.HistogramSet) (result []byte, errText string) {
	req, used, err := DecodeSplitRequest(body)
	if err != nil {
		return nil, err.Error()
	}
	if req.Version != servedVersion {
		return nil, fmt.Sprintf("%sserving %q, head computed against %q",
			splitVersionMismatchPrefix, servedVersion, req.Version)
	}
	if req.Split < 0 || req.Split > snap.Steps() {
		return nil, fmt.Sprintf("split index %d outside 0..%d", req.Split, snap.Steps())
	}
	ctx := extractTraceContext(body[used:])
	start := time.Now()
	res, perr := runSplitTail(snap, req.X, req.Split)
	compute := time.Since(start)
	hists.Observe("split.predict", compute)
	if ctx.Valid() {
		status := ""
		if perr != nil {
			status = trace.StatusError
		}
		tracer.get().Record(ctx, "worker.split", "", status, start, compute)
	}
	if perr != nil {
		return nil, perr.Error()
	}
	return appendComputeTime(encodeSplitResult(res), compute), ""
}

// runSplitTail finishes the tail and produces probabilities + entropies
// with exactly the operations PredictWithEntropy applies after its forward
// pass, so a remote tail is bit-identical to finishing locally. A panic
// inside the snapshot (activation shape not matching the boundary) is
// recovered into an error so the node keeps serving.
func runSplitTail(snap *nn.Snapshot, x *tensor.Tensor, split int) (res PredictResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: split predict panic: %v", r)
		}
	}()
	t := snap.ForwardRange(x, split, snap.Steps())
	tensor.SoftmaxRowsInto(t.Data, t.Data, t.Shape[0], t.Shape[1])
	ent := tensor.EntropyRows(t)
	return PredictResult{Probs: t, Entropy: ent.Data}, nil
}
