package cluster

import (
	"net"
	"strings"
	"testing"

	"github.com/teamnet/teamnet/internal/transport"
)

// Election wire-width regression tests. Pre-fix builds encoded the election
// id as a single byte, truncating ids ≥ 256 mod 256 on the wire: id 256
// looked like 0, id 300 like 44 — electing the wrong leader and spuriously
// reporting duplicates. The reply is now 4 bytes big-endian, with the
// legacy 1-byte form still accepted from old workers.

// electionWorker starts a predict-capable worker just for its election id.
func electionWorker(t *testing.T, seed int64, id int) string {
	t.Helper()
	w := NewWorker(tinyExpert(t, seed), id)
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return addr
}

// TestElectionWideIDs elects among ids {1, 256, 300}: exactly the set the
// one-byte wire format garbled (256→0, 300→44, electing 1).
func TestElectionWideIDs(t *testing.T) {
	w256 := electionWorker(t, 110, 256)
	w300 := electionWorker(t, 111, 300)

	// Node 1's view: both big ids survive the wire, 300 wins.
	isLeader, leaderID, err := ElectLeader(1, []string{w256, w300})
	if err != nil {
		t.Fatal(err)
	}
	if isLeader || leaderID != 300 {
		t.Fatalf("node 1 sees leader %d (isLeader=%v), want 300", leaderID, isLeader)
	}

	// Node 300's view: it beats 1 and 256 and takes the master role.
	w1 := electionWorker(t, 112, 1)
	isLeader, leaderID, err = ElectLeader(300, []string{w1, w256})
	if err != nil {
		t.Fatal(err)
	}
	if !isLeader || leaderID != 300 {
		t.Fatalf("node 300 sees leader %d (isLeader=%v), want itself", leaderID, isLeader)
	}

	// Pre-fix, id 256 truncated to 0 and collided with a node whose id
	// really is 0 — a spurious duplicate. Now it must read as a clean loss.
	isLeader, leaderID, err = ElectLeader(0, []string{w256})
	if err != nil {
		t.Fatalf("id 0 vs id 256 reported a spurious duplicate: %v", err)
	}
	if isLeader || leaderID != 256 {
		t.Fatalf("node 0 sees leader %d (isLeader=%v), want 256", leaderID, isLeader)
	}
}

// legacyElectionPeer answers one election probe with a payload of the given
// raw bytes — modeling old workers (1 byte) and corrupt replies.
func legacyElectionPeer(t *testing.T, reply []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if typ, _, err := transport.ReadFrame(conn); err != nil || typ != MsgElection {
					return
				}
				transport.WriteFrame(conn, MsgElectionOK, reply) //nolint:errcheck
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestElectionLegacyOneByteReply: a pre-fix worker's single-byte id is
// still accepted, and its (correct, sub-256) id participates normally.
func TestElectionLegacyOneByteReply(t *testing.T) {
	addr := legacyElectionPeer(t, []byte{42})
	id, err := probePeerID(addr)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Fatalf("legacy reply decoded as %d, want 42", id)
	}
	isLeader, leaderID, err := ElectLeader(3, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if isLeader || leaderID != 42 {
		t.Fatalf("leader %d (isLeader=%v), want 42", leaderID, isLeader)
	}
}

// TestElectionRejectsMalformedIDWidth: anything that is neither the 4-byte
// nor the legacy 1-byte form is a protocol error, not a guess.
func TestElectionRejectsMalformedIDWidth(t *testing.T) {
	addr := legacyElectionPeer(t, []byte{1, 2})
	if _, err := probePeerID(addr); err == nil || !strings.Contains(err.Error(), "want 4") {
		t.Fatalf("2-byte election id accepted: %v", err)
	}
}
