// Package cluster is the live distributed-inference runtime of Figure 1(d):
// TeamNet experts served over raw TCP sockets by worker nodes, a master
// that broadcasts sensor data, gathers predictions with uncertainties, and
// selects the least-uncertain answer; a bully leader election for the
// distributed variant of step 5; and the SG-MoE runtimes (gate + selected
// experts over RPC for SG-MoE-G, over the MPI substrate for SG-MoE-M).
//
// The runtime assumes an edge fault model — peers stall, reset, vanish and
// return — and self-heals rather than failing fast: every peer runs the
// supervision state machine in supervisor.go (healthy → suspect → open →
// half-open, a circuit breaker with background probe re-admission), round
// trips carry a bounded retry budget with backoff, and InferBestEffort
// routes around quarantined peers entirely. The chaos package drives these
// paths in tests and live drills.
//
// The same runtime is fully instrumented: latency histograms and counters
// are always recorded, and an optional internal/trace tracer decomposes
// each query into serialize / network / remote-compute / gate spans with
// trace ids propagated master → worker as backward-compatible payload
// trailers (tracewire.go, DESIGN.md §7).
//
// Everything here runs over real connections — the unit tests and the live
// benchmark mode exercise actual loopback TCP; the simulated experiments
// price the same protocol's byte counts through internal/edgesim.
package cluster

import (
	"encoding/binary"
	"fmt"

	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// Frame types of the TeamNet socket protocol.
const (
	// MsgPredict carries an input tensor master → worker (Fig 1d step 2).
	MsgPredict byte = iota + 1
	// MsgResult carries probabilities + per-sample entropies back
	// (Fig 1d step 4).
	MsgResult
	// MsgPing / MsgPong probe liveness.
	MsgPing
	MsgPong
	// MsgElection / MsgElectionOK / MsgCoordinator implement the bully
	// election (Section III's "leader election protocol" option).
	MsgElection
	MsgElectionOK
	MsgCoordinator
	// MsgError reports a worker-side failure as text.
	MsgError
	// MsgPredictMux / MsgResultMux / MsgErrorMux are the multiplexed
	// variants of MsgPredict / MsgResult / MsgError: the payload carries a
	// 4-byte big-endian request id ahead of the regular encoding, so many
	// concurrent queries share one TCP connection per peer and replies may
	// return out of order (see mux.go and DESIGN.md §8).
	MsgPredictMux
	MsgResultMux
	MsgErrorMux
	// MsgAnnounce / MsgAnnounceOK carry fabric membership: a JSON-encoded
	// announcement (the sender's Member descriptor plus a bounded sample of
	// its roster) exchanged gateway↔master↔worker; each exchange merges
	// both sides' rosters — cheap anti-entropy gossip (see membership.go).
	MsgAnnounce
	MsgAnnounceOK
	// MsgModelPush / MsgModelPushOK distribute a versioned expert snapshot
	// over the wire (nn.Spec JSON + the nn/snapshot codec stream) so masters
	// and workers hot-swap models without restart (see modelpush.go).
	MsgModelPush
	MsgModelPushOK
	// MsgFabricPredict / MsgFabricResult are the gateway→master inference
	// frames: mux-pipelined like MsgPredictMux, but the reply carries the
	// combined ensemble answer (winners + live/total quorum) instead of one
	// expert's probabilities + entropies (see masterserver.go).
	MsgFabricPredict
	MsgFabricResult
	// MsgSplitPredict / MsgSplitResult are the partial-offload frames: the
	// master runs the head of the network locally and ships the intermediate
	// activation (full float64 precision — the split contract is bit-identity
	// with the local forward) plus the split index and expected model
	// version; the peer finishes the tail from its atomic snapshot pointer.
	// Mux-pipelined like MsgPredictMux and answered on the same link
	// (MsgSplitResult / MsgErrorMux; see splitwire.go and DESIGN.md §13).
	MsgSplitPredict
	MsgSplitResult
)

// muxIDSize is the request-id prefix every mux payload carries.
const muxIDSize = 4

// appendMuxID prefixes payload with a request id, forming a mux payload.
func appendMuxID(id uint32, payload []byte) []byte {
	out := make([]byte, muxIDSize, muxIDSize+len(payload))
	binary.BigEndian.PutUint32(out, id)
	return append(out, payload...)
}

// splitMuxID strips the request-id prefix from a mux payload.
func splitMuxID(payload []byte) (id uint32, rest []byte, err error) {
	if len(payload) < muxIDSize {
		return 0, nil, fmt.Errorf("cluster: mux payload %d bytes, need id prefix", len(payload))
	}
	return binary.BigEndian.Uint32(payload), payload[muxIDSize:], nil
}

// PredictResult is one node's answer for a batch: class probabilities and
// the predictive entropy per sample.
type PredictResult struct {
	Probs   *tensor.Tensor
	Entropy []float64
}

// EncodeResult serializes a PredictResult payload.
func EncodeResult(r PredictResult) []byte {
	probs := transport.EncodeTensor(r.Probs)
	ent := transport.EncodeFloats(r.Entropy)
	out := make([]byte, 0, len(probs)+len(ent))
	out = append(out, probs...)
	return append(out, ent...)
}

// DecodeResult parses a PredictResult payload, ignoring any trailing bytes
// (which carry the optional timing trailer — see tracewire.go).
func DecodeResult(payload []byte) (PredictResult, error) {
	r, _, err := decodeResultRest(payload)
	return r, err
}

// decodeResultRest parses a PredictResult payload and also returns the
// trailing bytes after the entropies, where trace-aware workers append
// their compute-timing trailer.
func decodeResultRest(payload []byte) (PredictResult, []byte, error) {
	probs, used, err := transport.DecodeTensor(payload)
	if err != nil {
		return PredictResult{}, nil, fmt.Errorf("cluster: decode result probs: %w", err)
	}
	ent, entUsed, err := transport.DecodeFloats(payload[used:])
	if err != nil {
		return PredictResult{}, nil, fmt.Errorf("cluster: decode result entropy: %w", err)
	}
	if probs.Shape[0] != len(ent) {
		return PredictResult{}, nil, fmt.Errorf("cluster: result rows %d != entropies %d", probs.Shape[0], len(ent))
	}
	return PredictResult{Probs: probs, Entropy: ent}, payload[used+entUsed:], nil
}

// ResultWireBytes reports the on-wire payload size of a result for a batch
// of the given dimensions — used by the cost model.
func ResultWireBytes(batch, classes int) int {
	probs := 1 + 4*2 + 4*batch*classes
	ent := 4 + 8*batch
	return probs + ent
}

// InputWireBytes reports the on-wire payload size of a broadcast input.
func InputWireBytes(batch, features int) int {
	return 1 + 4*2 + 4*batch*features
}
