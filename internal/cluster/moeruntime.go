package cluster

import (
	"fmt"
	"sync"

	"github.com/teamnet/teamnet/internal/moe"
	"github.com/teamnet/teamnet/internal/mpi"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// SG-MoE distributed runtimes (paper Section VI-A): "each expert is
// executed on one edge node, and the gate is placed on one of the edge
// nodes". Two transports are evaluated: gRPC (SG-MoE-G, here the
// transport.RPC layer) and MPI (SG-MoE-M, here the mpi substrate). Unlike
// TeamNet's unconditional broadcast, the master must run the gate first and
// only then dispatch to the selected expert nodes — the serialization the
// inference-time comparison measures.

// MoEExpertServer serves one SG-MoE expert as an RPC service (SG-MoE-G's
// worker side). The method "predict" maps an input tensor to the expert's
// class probabilities.
type MoEExpertServer struct {
	srv *transport.RPCServer
}

// ServeMoEExpert starts serving the expert on addr and returns the bound
// address and the server handle.
func ServeMoEExpert(expert *nn.Network, addr string) (string, *MoEExpertServer, error) {
	var mu sync.Mutex
	srv := transport.NewRPCServer()
	srv.Register("predict", func(req []byte) ([]byte, error) {
		x, _, err := transport.DecodeTensor(req)
		if err != nil {
			return nil, fmt.Errorf("cluster: moe predict decode: %w", err)
		}
		mu.Lock()
		probs := expert.Predict(x)
		mu.Unlock()
		return transport.EncodeTensor(probs), nil
	})
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, &MoEExpertServer{srv: srv}, nil
}

// Close stops the expert server.
func (s *MoEExpertServer) Close() error { return s.srv.Close() }

// MoEMaster runs the SG-MoE gate locally and dispatches the selected
// experts over RPC (the SG-MoE-G master side).
type MoEMaster struct {
	model   *moe.SGMoE
	clients []*transport.RPCClient // index = expert id
}

// NewMoEMaster connects to one expert server per expert, in expert order.
func NewMoEMaster(model *moe.SGMoE, addrs []string) (*MoEMaster, error) {
	if len(addrs) != model.K() {
		return nil, fmt.Errorf("cluster: %d expert addrs for %d experts", len(addrs), model.K())
	}
	m := &MoEMaster{model: model}
	for i, addr := range addrs {
		cli, err := transport.DialRPC(addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cluster: dial expert %d: %w", i, err)
		}
		m.clients = append(m.clients, cli)
	}
	return m, nil
}

// Infer gates locally, dispatches the top-k experts in parallel over RPC,
// and mixes their returned probabilities with the gate weights.
func (m *MoEMaster) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	batch := x.Shape[0]
	indices, weights := m.model.GateSelect(x)

	// Group rows by selected expert so each expert gets one call.
	perExpert := make([][]int, m.model.K())
	for b, idx := range indices {
		for _, e := range idx {
			perExpert[e] = append(perExpert[e], b)
		}
	}

	type reply struct {
		expert int
		rows   []int
		probs  *tensor.Tensor
		err    error
	}
	var wg sync.WaitGroup
	replies := make([]reply, 0, m.model.K())
	var mu sync.Mutex
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(e int, rows []int) {
			defer wg.Done()
			payload := transport.EncodeTensor(x.SelectRows(rows))
			resp, err := m.clients[e].Call("predict", payload)
			r := reply{expert: e, rows: rows, err: err}
			if err == nil {
				r.probs, _, r.err = transport.DecodeTensor(resp)
			}
			mu.Lock()
			replies = append(replies, r)
			mu.Unlock()
		}(e, rows)
	}
	wg.Wait()

	out := tensor.New(batch, m.model.Classes)
	for _, r := range replies {
		if r.err != nil {
			return nil, fmt.Errorf("cluster: expert %d rpc: %w", r.expert, r.err)
		}
		for ri, b := range r.rows {
			w := 0.0
			for j, ei := range indices[b] {
				if ei == r.expert {
					w = weights[b][j]
					break
				}
			}
			dst := out.RowSlice(b)
			src := r.probs.RowSlice(ri)
			for c := range dst {
				dst[c] += w * src[c]
			}
		}
	}
	return out, nil
}

// Close drops all expert connections.
func (m *MoEMaster) Close() error {
	var firstErr error
	for _, c := range m.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MoEMPIWorker is the SG-MoE-M worker loop: rank r serves expert r-1,
// receiving row batches from rank 0 and returning probabilities, until rank
// 0 sends the zero-row shutdown sentinel.
func MoEMPIWorker(comm *mpi.Comm, expert *nn.Network) error {
	for {
		x, err := comm.Recv(0)
		if err != nil {
			return fmt.Errorf("cluster: moe-mpi worker rank %d recv: %w", comm.Rank(), err)
		}
		if x.Shape[0] == 0 { // shutdown sentinel
			return nil
		}
		probs := expert.Predict(x)
		if err := comm.Send(0, probs); err != nil {
			return fmt.Errorf("cluster: moe-mpi worker rank %d send: %w", comm.Rank(), err)
		}
	}
}

// MoEMPIMaster drives SG-MoE inference over the MPI substrate from rank 0:
// gate locally, send each selected expert its rows, receive probabilities,
// mix. Experts live on ranks 1..K; rank 0 holds only the gate.
type MoEMPIMaster struct {
	model *moe.SGMoE
	comm  *mpi.Comm
}

// NewMoEMPIMaster wraps rank 0 of a (K+1)-rank world.
func NewMoEMPIMaster(model *moe.SGMoE, comm *mpi.Comm) (*MoEMPIMaster, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: moe-mpi master must be rank 0, got %d", comm.Rank())
	}
	if comm.Size() != model.K()+1 {
		return nil, fmt.Errorf("cluster: moe-mpi world %d != K+1 = %d", comm.Size(), model.K()+1)
	}
	return &MoEMPIMaster{model: model, comm: comm}, nil
}

// Infer performs one gated inference round over MPI.
func (m *MoEMPIMaster) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	batch := x.Shape[0]
	indices, weights := m.model.GateSelect(x)
	perExpert := make([][]int, m.model.K())
	for b, idx := range indices {
		for _, e := range idx {
			perExpert[e] = append(perExpert[e], b)
		}
	}
	// Send phase (rank order, matching the workers' Recv).
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		if err := m.comm.Send(e+1, x.SelectRows(rows)); err != nil {
			return nil, fmt.Errorf("cluster: moe-mpi send expert %d: %w", e, err)
		}
	}
	// Gather phase.
	out := tensor.New(batch, m.model.Classes)
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		probs, err := m.comm.Recv(e + 1)
		if err != nil {
			return nil, fmt.Errorf("cluster: moe-mpi recv expert %d: %w", e, err)
		}
		for ri, b := range rows {
			w := 0.0
			for j, ei := range indices[b] {
				if ei == e {
					w = weights[b][j]
					break
				}
			}
			dst := out.RowSlice(b)
			src := probs.RowSlice(ri)
			for c := range dst {
				dst[c] += w * src[c]
			}
		}
	}
	return out, nil
}

// Shutdown releases all worker ranks with the zero-row sentinel.
func (m *MoEMPIMaster) Shutdown() error {
	features := 1
	for e := 0; e < m.model.K(); e++ {
		if err := m.comm.Send(e+1, tensor.New(0, features)); err != nil {
			return fmt.Errorf("cluster: moe-mpi shutdown rank %d: %w", e+1, err)
		}
	}
	return nil
}
