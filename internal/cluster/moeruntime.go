package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/moe"
	"github.com/teamnet/teamnet/internal/mpi"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// SG-MoE distributed runtimes (paper Section VI-A): "each expert is
// executed on one edge node, and the gate is placed on one of the edge
// nodes". Two transports are evaluated: gRPC (SG-MoE-G, here the
// transport.RPC layer) and MPI (SG-MoE-M, here the mpi substrate). Unlike
// TeamNet's unconditional broadcast, the master must run the gate first and
// only then dispatch to the selected expert nodes — the serialization the
// inference-time comparison measures.

// MoEExpertServer serves one SG-MoE expert as an RPC service (SG-MoE-G's
// worker side). The method "predict" maps an input tensor to the expert's
// class probabilities. Traced RPC calls (frame type rpcRequestTraced) are
// recorded as "moe.expert.predict" spans under the caller's trace id when a
// tracer is installed with SetTracer.
type MoEExpertServer struct {
	srv      *transport.RPCServer
	counters *metrics.CounterSet
	hists    *metrics.HistogramSet
	tracer   *tracerRef
}

// ServeMoEExpert starts serving the expert on addr and returns the bound
// address and the server handle.
func ServeMoEExpert(expert *nn.Network, addr string) (string, *MoEExpertServer, error) {
	snap, err := nn.NewSnapshot(expert)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: moe expert snapshot: %w", err)
	}
	s := &MoEExpertServer{
		srv:      transport.NewRPCServer(),
		counters: metrics.NewCounterSet(),
		hists:    metrics.NewHistogramSet(),
		tracer:   &tracerRef{},
	}
	s.srv.Register("predict", func(req []byte) ([]byte, error) {
		s.counters.Counter("requests").Inc()
		x, _, err := transport.DecodeTensor(req)
		if err != nil {
			s.counters.Counter("errors.decode").Inc()
			return nil, fmt.Errorf("cluster: moe predict decode: %w", err)
		}
		start := time.Now()
		probs := snap.Predict(x)
		s.hists.Observe("predict", time.Since(start))
		return transport.EncodeTensor(probs), nil
	})
	// The RPC server times every handler call itself; for traced requests
	// it hands us the propagated context so the span lands under the
	// master's trace id. (This measures handler time including the replica
	// lock wait, which is exactly what the master's network/compute split
	// subtracts out.)
	s.srv.OnTraced(func(method string, tc transport.TraceContext, start time.Time, d time.Duration) {
		parent := trace.Context{TraceID: tc.TraceID, SpanID: tc.SpanID}
		s.tracer.get().Record(parent, "moe.expert."+method, "", "", start, d)
	})
	bound, err := s.srv.Listen(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, s, nil
}

// Counters exposes the expert server's request counters.
func (s *MoEExpertServer) Counters() *metrics.CounterSet { return s.counters }

// Histograms exposes the expert server's latency histograms ("predict").
func (s *MoEExpertServer) Histograms() *metrics.HistogramSet { return s.hists }

// SetTracer installs (or, with nil, removes) the expert server's span
// collector for traced RPC requests.
func (s *MoEExpertServer) SetTracer(tr *trace.Tracer) { s.tracer.set(tr) }

// Tracer returns the installed tracer (nil when tracing is off).
func (s *MoEExpertServer) Tracer() *trace.Tracer { return s.tracer.get() }

// Close stops the expert server.
func (s *MoEExpertServer) Close() error { return s.srv.Close() }

// MoEMaster runs the SG-MoE gate locally and dispatches the selected
// experts over RPC (the SG-MoE-G master side).
type MoEMaster struct {
	model   *moe.SGMoE
	clients []*transport.RPCClient // index = expert id
	hists   *metrics.HistogramSet
	tracer  *tracerRef
}

// NewMoEMaster connects to one expert server per expert, in expert order.
func NewMoEMaster(model *moe.SGMoE, addrs []string) (*MoEMaster, error) {
	if len(addrs) != model.K() {
		return nil, fmt.Errorf("cluster: %d expert addrs for %d experts", len(addrs), model.K())
	}
	m := &MoEMaster{model: model, hists: metrics.NewHistogramSet(), tracer: &tracerRef{}}
	for i, addr := range addrs {
		cli, err := transport.DialRPC(addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cluster: dial expert %d: %w", i, err)
		}
		m.clients = append(m.clients, cli)
	}
	return m, nil
}

// Histograms exposes the master's latency histograms ("infer.total",
// "gate", "expert.<i>.rtt", ...).
func (m *MoEMaster) Histograms() *metrics.HistogramSet { return m.hists }

// SetTracer installs (or, with nil, removes) the span collector. When set,
// Infer records a span tree per query and dispatches traced RPC calls so
// trace-aware expert servers record their side too. Traced calls require
// trace-aware servers (see transport.RPCClient.CallTraced); leave the
// tracer nil when talking to pre-trace expert builds.
func (m *MoEMaster) SetTracer(tr *trace.Tracer) { m.tracer.set(tr) }

// Tracer returns the installed tracer (nil when tracing is off).
func (m *MoEMaster) Tracer() *trace.Tracer { return m.tracer.get() }

// Infer gates locally, dispatches the top-k experts in parallel over RPC,
// and mixes their returned probabilities with the gate weights.
func (m *MoEMaster) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	tr := m.tracer.get()
	root := tr.Start(trace.Context{}, "moe.infer")
	start := time.Now()
	out, err := m.infer(x, tr, root.Ctx())
	root.EndErr(err)
	m.hists.Observe("infer.total", time.Since(start))
	return out, err
}

func (m *MoEMaster) infer(x *tensor.Tensor, tr *trace.Tracer, root trace.Context) (*tensor.Tensor, error) {
	batch := x.Shape[0]
	gateStart := time.Now()
	indices, weights := m.model.GateSelect(x)
	gateDur := time.Since(gateStart)
	m.hists.Observe("gate", gateDur)
	tr.Record(root, "gate", "", "", gateStart, gateDur)

	// Group rows by selected expert so each expert gets one call.
	perExpert := make([][]int, m.model.K())
	for b, idx := range indices {
		for _, e := range idx {
			perExpert[e] = append(perExpert[e], b)
		}
	}

	type reply struct {
		expert int
		rows   []int
		probs  *tensor.Tensor
		err    error
	}
	var wg sync.WaitGroup
	replies := make([]reply, 0, m.model.K())
	var mu sync.Mutex
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(e int, rows []int) {
			defer wg.Done()
			r := reply{expert: e, rows: rows}
			sp := tr.Start(root, fmt.Sprintf("expert %d", e))
			payload := transport.EncodeTensor(x.SelectRows(rows))
			rttStart := time.Now()
			resp, remote, err := m.clients[e].CallTraced("predict", payload,
				transport.TraceContext{TraceID: sp.Ctx().TraceID, SpanID: sp.Ctx().SpanID})
			rtt := time.Since(rttStart)
			r.err = err
			if err == nil {
				r.probs, _, r.err = transport.DecodeTensor(resp)
			}
			if err == nil {
				m.hists.Observe(fmt.Sprintf("expert.%d.rtt", e), rtt)
				if remote > 0 {
					// The traced response reports server handler time;
					// the remainder of the round trip is the wire.
					network := rtt - remote
					if network < 0 {
						network = 0
					}
					tr.Record(sp.Ctx(), "network", "", "", rttStart, network)
					tr.Record(sp.Ctx(), "compute", fmt.Sprintf("expert-%d", e), "",
						rttStart.Add(network/2), remote)
				}
			}
			sp.EndErr(r.err)
			mu.Lock()
			replies = append(replies, r)
			mu.Unlock()
		}(e, rows)
	}
	wg.Wait()

	out := tensor.New(batch, m.model.Classes)
	for _, r := range replies {
		if r.err != nil {
			return nil, fmt.Errorf("cluster: expert %d rpc: %w", r.expert, r.err)
		}
		for ri, b := range r.rows {
			w := 0.0
			for j, ei := range indices[b] {
				if ei == r.expert {
					w = weights[b][j]
					break
				}
			}
			dst := out.RowSlice(b)
			src := r.probs.RowSlice(ri)
			for c := range dst {
				dst[c] += w * src[c]
			}
		}
	}
	return out, nil
}

// Close drops all expert connections.
func (m *MoEMaster) Close() error {
	var firstErr error
	for _, c := range m.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MoEMPIWorker is the SG-MoE-M worker loop: rank r serves expert r-1,
// receiving row batches from rank 0 and returning probabilities, until rank
// 0 sends the zero-row shutdown sentinel.
func MoEMPIWorker(comm *mpi.Comm, expert *nn.Network) error {
	for {
		x, err := comm.Recv(0)
		if err != nil {
			return fmt.Errorf("cluster: moe-mpi worker rank %d recv: %w", comm.Rank(), err)
		}
		if x.Shape[0] == 0 { // shutdown sentinel
			return nil
		}
		probs := expert.Predict(x)
		if err := comm.Send(0, probs); err != nil {
			return fmt.Errorf("cluster: moe-mpi worker rank %d send: %w", comm.Rank(), err)
		}
	}
}

// MoEMPIMaster drives SG-MoE inference over the MPI substrate from rank 0:
// gate locally, send each selected expert its rows, receive probabilities,
// mix. Experts live on ranks 1..K; rank 0 holds only the gate.
type MoEMPIMaster struct {
	model *moe.SGMoE
	comm  *mpi.Comm
}

// NewMoEMPIMaster wraps rank 0 of a (K+1)-rank world.
func NewMoEMPIMaster(model *moe.SGMoE, comm *mpi.Comm) (*MoEMPIMaster, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: moe-mpi master must be rank 0, got %d", comm.Rank())
	}
	if comm.Size() != model.K()+1 {
		return nil, fmt.Errorf("cluster: moe-mpi world %d != K+1 = %d", comm.Size(), model.K()+1)
	}
	return &MoEMPIMaster{model: model, comm: comm}, nil
}

// Infer performs one gated inference round over MPI.
func (m *MoEMPIMaster) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	batch := x.Shape[0]
	indices, weights := m.model.GateSelect(x)
	perExpert := make([][]int, m.model.K())
	for b, idx := range indices {
		for _, e := range idx {
			perExpert[e] = append(perExpert[e], b)
		}
	}
	// Send phase (rank order, matching the workers' Recv).
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		if err := m.comm.Send(e+1, x.SelectRows(rows)); err != nil {
			return nil, fmt.Errorf("cluster: moe-mpi send expert %d: %w", e, err)
		}
	}
	// Gather phase.
	out := tensor.New(batch, m.model.Classes)
	for e, rows := range perExpert {
		if len(rows) == 0 {
			continue
		}
		probs, err := m.comm.Recv(e + 1)
		if err != nil {
			return nil, fmt.Errorf("cluster: moe-mpi recv expert %d: %w", e, err)
		}
		for ri, b := range rows {
			w := 0.0
			for j, ei := range indices[b] {
				if ei == e {
					w = weights[b][j]
					break
				}
			}
			dst := out.RowSlice(b)
			src := probs.RowSlice(ri)
			for c := range dst {
				dst[c] += w * src[c]
			}
		}
	}
	return out, nil
}

// Shutdown releases all worker ranks with the zero-row sentinel.
func (m *MoEMPIMaster) Shutdown() error {
	features := 1
	for e := 0; e < m.model.K(); e++ {
		if err := m.comm.Send(e+1, tensor.New(0, features)); err != nil {
			return fmt.Errorf("cluster: moe-mpi shutdown rank %d: %w", e+1, err)
		}
	}
	return nil
}
