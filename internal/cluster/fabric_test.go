package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
)

// Fabric tests: membership gossip, versioned model push, and the
// MasterServer/RemoteMaster wire pair. All run under -race via the full
// test suite.

// fabricSpec is a tiny MLP used across the fabric tests.
var fabricSpec = nn.Spec{Kind: "mlp", MLP: &nn.MLPSpec{Label: "m", Input: 4, Width: 8, Layers: 1, Classes: 3}}

func buildFabricNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	n, err := fabricSpec.Build(tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func fabricInput(rows int) *tensor.Tensor {
	x := tensor.New(rows, 4)
	for i := range x.Data {
		x.Data[i] = float64(i%7) / 7
	}
	return x
}

func TestFabricCodecRoundTrip(t *testing.T) {
	x := fabricInput(3)
	body := encodeFabricRequest(fabricModeQuorum, 42, 1e9, x)
	mode, soft, budget, got, err := decodeFabricRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if mode != fabricModeQuorum || soft != 42 || budget != 1e9 {
		t.Fatalf("header round trip: mode=%d soft=%d budget=%d", mode, soft, budget)
	}
	// Tensors ride the wire as float32 (see transport.EncodeTensor).
	for i := range x.Data {
		if got.Data[i] != float64(float32(x.Data[i])) {
			t.Fatalf("tensor element %d diverged", i)
		}
	}

	probs := tensor.New(2, 3)
	for i := range probs.Data {
		probs.Data[i] = float64(i) / 6
	}
	res := encodeFabricResult(probs, []int{1, 0}, 2, 3)
	gp, winners, live, total, err := decodeFabricResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if live != 2 || total != 3 || winners[0] != 1 || winners[1] != 0 {
		t.Fatalf("result round trip: live=%d total=%d winners=%v", live, total, winners)
	}
	for i := range probs.Data {
		if gp.Data[i] != float64(float32(probs.Data[i])) {
			t.Fatalf("probs element %d diverged", i)
		}
	}

	if _, _, _, _, err := decodeFabricRequest([]byte{9}); err == nil {
		t.Fatal("truncated fabric request accepted")
	}
	if _, _, _, _, err := decodeFabricResult([]byte{0, 1}); err == nil {
		t.Fatal("truncated fabric result accepted")
	}
}

func TestModelPushCodecRoundTrip(t *testing.T) {
	net := buildFabricNet(t, 11)
	payload, err := EncodeModelPush("v7", fabricSpec, net)
	if err != nil {
		t.Fatal(err)
	}
	version, snap, err := DecodeModelPush(payload)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v7" || snap == nil {
		t.Fatalf("version=%q snap=%v", version, snap)
	}
	// The rebuilt snapshot must predict bit-identically to the original.
	x := fabricInput(2)
	want := nn.MustSnapshot(net).Predict(x)
	got := snap.Predict(x)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) != 0 {
			t.Fatalf("pushed snapshot diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	// Version-only push carries no snapshot.
	vo, err := EncodeModelPush("v8", nn.Spec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	version, snap, err = DecodeModelPush(vo)
	if err != nil || version != "v8" || snap != nil {
		t.Fatalf("version-only push: %q %v %v", version, snap, err)
	}

	if _, _, err := DecodeModelPush([]byte{0}); err == nil {
		t.Fatal("truncated model push accepted")
	}
}

func TestMasterServerFabricEndToEnd(t *testing.T) {
	// One worker behind a master with a local expert, served over the
	// fabric; a RemoteMaster client must see the same answers as direct
	// master calls, strict and quorum.
	worker := NewWorker(buildFabricNet(t, 1), 1)
	waddr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	master := NewMaster(buildFabricNet(t, 2), 3)
	defer master.Close()
	if err := master.Connect(waddr); err != nil {
		t.Fatal(err)
	}

	srv := NewMasterServer(master, 7)
	srv.SetModelVersion("vA")
	maddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rm := NewRemoteMaster(maddr, 2*time.Second)
	defer rm.Close()

	x := fabricInput(2)
	wantProbs, wantWinners, err := master.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	gotProbs, gotWinners, err := rm.InferContext(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	// The input and reply each cross the wire as float32, so the remote
	// answer matches direct inference to float32 precision, not bit-exactly.
	for i := range wantProbs.Data {
		if math.Abs(gotProbs.Data[i]-wantProbs.Data[i]) > 1e-5 {
			t.Fatalf("fabric probs diverge at %d: %v vs %v", i, gotProbs.Data[i], wantProbs.Data[i])
		}
	}
	for i := range wantWinners {
		if gotWinners[i] != wantWinners[i] {
			t.Fatalf("fabric winners diverge at %d: %d vs %d", i, gotWinners[i], wantWinners[i])
		}
	}

	probs, winners, live, total, err := rm.InferQuorumContext(context.Background(), x, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if live != 2 || total != 2 {
		t.Fatalf("quorum live=%d total=%d, want 2/2", live, total)
	}
	if probs.Shape[0] != 2 || len(winners) != 2 {
		t.Fatalf("quorum result shape %v / %d winners", probs.Shape, len(winners))
	}

	// A second strict call pipelines on the same link.
	if _, _, err := rm.InferContext(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	// An expired caller deadline is the caller's error, and the link
	// survives for the next request.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := rm.InferContext(ctx, x); err == nil {
		t.Fatal("expired deadline succeeded")
	}
	if _, _, err := rm.InferContext(context.Background(), x); err != nil {
		t.Fatalf("link did not survive a caller abort: %v", err)
	}
}

func TestModelPushHotSwapOverWire(t *testing.T) {
	worker := NewWorker(buildFabricNet(t, 1), 1)
	waddr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	worker.SetModelVersion("vA")

	master := NewMaster(buildFabricNet(t, 2), 3)
	defer master.Close()
	if err := master.Connect(waddr); err != nil {
		t.Fatal(err)
	}
	srv := NewMasterServer(master, 7)
	srv.SetModelVersion("vA")
	maddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var swapped []string
	swapCh := make(chan string, 1)
	srv.SetOnSwap(func(v string) {
		swapped = append(swapped, v)
		swapCh <- v
	})

	x := fabricInput(2)
	before, _, err := master.Infer(x)
	if err != nil {
		t.Fatal(err)
	}

	// Push new weights to the worker, then the master — the documented
	// rollout ordering (gateway cutover last, via the onSwap hook).
	newNet := buildFabricNet(t, 99)
	if err := PushModel(waddr, "vB", fabricSpec, newNet, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := worker.ModelVersion(); got != "vB" {
		t.Fatalf("worker version %q after push, want vB", got)
	}
	if err := PushModel(maddr, "vB", fabricSpec, newNet, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-swapCh:
		if v != "vB" {
			t.Fatalf("onSwap saw %q, want vB", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("onSwap hook never ran")
	}
	if got := srv.ModelVersion(); got != "vB" {
		t.Fatalf("master version %q after push, want vB", got)
	}

	after, _, err := master.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("hot swap did not change the served model")
	}
	if master.Counters().Counter("model.swaps").Value() != 1 {
		t.Fatalf("model.swaps = %d, want 1", master.Counters().Counter("model.swaps").Value())
	}
}

func TestAnnounceGossipSpreadsMasters(t *testing.T) {
	// Two master servers; B announces to A, then a gateway bootstrapping
	// against A alone must discover B through the gossip sample.
	ma := NewMaster(buildFabricNet(t, 2), 3)
	defer ma.Close()
	srvA := NewMasterServer(ma, 1)
	addrA, err := srvA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()

	mb := NewMaster(buildFabricNet(t, 3), 3)
	defer mb.Close()
	srvB := NewMasterServer(mb, 2)
	if _, err := srvB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	if _, err := srvB.Announce(addrA, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// B learned A from the exchange (anti-entropy runs both ways; the
	// gossip sample may echo B itself back — harmless).
	foundA := false
	for _, a := range srvB.Roster().Masters() {
		if a == addrA {
			foundA = true
		}
	}
	if !foundA {
		t.Fatalf("B's roster after announce: %v, want %s present", srvB.Roster().Masters(), addrA)
	}

	roster := NewRoster()
	self := Member{Role: RoleGateway, ID: 9}
	if _, err := Announce(addrA, self, roster, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	masters := roster.Masters()
	if len(masters) != 2 {
		t.Fatalf("gateway discovered %v masters, want both via gossip", masters)
	}

	// Expiry ages out members that stop announcing.
	if n := roster.Expire(0); n != len(masters) {
		t.Fatalf("Expire(0) dropped %d, want %d", n, len(masters))
	}
	if roster.Len() != 0 {
		t.Fatalf("roster still holds %d entries after expiry", roster.Len())
	}
}
