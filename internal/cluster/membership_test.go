package cluster

import (
	"testing"
	"time"
)

// TestRosterReadmitsExpiredMemberWithNewVersion pins the crash-and-return
// edge case: a member whose entry TTL-expired re-announces under a new
// model version and must be live again immediately, with the new version —
// and stale gossip echoes of its pre-crash descriptor must neither clobber
// the re-admitted entry nor keep a dead incarnation alive.
func TestRosterReadmitsExpiredMemberWithNewVersion(t *testing.T) {
	r := NewRoster()
	old := Member{Role: RoleWorker, Addr: "10.0.0.7:9000", ID: 4, Version: "v1"}
	r.Upsert(old)
	if r.Len() != 1 {
		t.Fatalf("roster holds %d entries, want 1", r.Len())
	}

	// The worker crashes and its entry ages out.
	if n := r.Expire(0); n != 1 {
		t.Fatalf("Expire dropped %d entries, want 1", n)
	}

	// It comes back under a new model version and announces first-hand.
	fresh := Member{Role: RoleWorker, Addr: "10.0.0.7:9000", ID: 4, Version: "v2"}
	r.Upsert(fresh)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0] != fresh {
		t.Fatalf("re-admitted roster = %+v, want exactly %+v", snap, fresh)
	}

	// A third node that never heard of the crash gossips the pre-crash
	// descriptor. Second-hand data must not rewrite the first-hand entry.
	r.Merge([]Member{old})
	snap = r.Snapshot()
	if len(snap) != 1 || snap[0].Version != "v2" {
		t.Fatalf("stale gossip clobbered the re-admitted member: %+v", snap)
	}

	// A confirming echo (matching descriptor) refreshes the entry without
	// demoting it: a later stale echo still cannot rewrite it.
	r.Merge([]Member{fresh})
	r.Merge([]Member{old})
	if snap = r.Snapshot(); snap[0].Version != "v2" {
		t.Fatalf("stale gossip clobbered after a confirming echo: %+v", snap)
	}
}

// TestRosterGossipStillDiscoversAndUpdates pins that the first-hand
// precedence does not break gossip's actual jobs: introducing unknown
// members and propagating version changes between members that only know
// each other second-hand.
func TestRosterGossipStillDiscoversAndUpdates(t *testing.T) {
	r := NewRoster()
	m := Member{Role: RoleMaster, Addr: "10.0.0.9:9100", ID: 7, Version: "v1"}
	r.Merge([]Member{m})
	if r.Len() != 1 {
		t.Fatal("gossip failed to introduce an unknown member")
	}
	m.Version = "v2"
	r.Merge([]Member{m})
	if snap := r.Snapshot(); snap[0].Version != "v2" {
		t.Fatalf("gossip failed to update a gossip-learned member: %+v", snap)
	}
	// Gossip refreshes keep second-hand entries alive.
	time.Sleep(time.Millisecond)
	if n := r.Expire(time.Hour); n != 0 {
		t.Fatalf("fresh gossip entry expired: %d", n)
	}
}
