package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// Worker serves one TeamNet expert over raw TCP: the edge-node role of
// Figure 1(d). It answers MsgPredict frames with MsgResult frames carrying
// probabilities and predictive entropies, answers pipelined MsgPredictMux
// frames concurrently — running them on the expert's frozen inference
// snapshot and writing replies out of order under a per-connection write
// lock — and responds to pings and election traffic.
//
// Every result carries the measured expert compute time as a trailing
// timing trailer (see tracewire.go), so the master can split its observed
// round trip into network and compute; requests that arrive with a trace
// trailer additionally record a "worker.predict" span — under the
// propagated master trace id — into the worker's own tracer.
type Worker struct {
	// snap is the frozen expert, safe for concurrent inference. An atomic
	// pointer so a versioned model push (MsgModelPush) can hot-swap it
	// while requests are in flight: each predict loads the pointer once.
	snap     atomic.Pointer[nn.Snapshot]
	id       int // election identity; higher wins
	counters *metrics.CounterSet
	hists    *metrics.HistogramSet
	tracer   *tracerRef
	roster   *Roster // fabric membership view, fed by announce exchanges
	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	addr     string // bound listen address, set by Listen
	version  string // model version label, set by SetModelVersion / pushes
}

// NewWorker compiles an expert network into a frozen inference snapshot
// and wraps it for serving; any number of requests then run concurrently
// on the snapshot (bounded per connection by workerMuxWindow). id is the
// node's election identity (any distinct non-negative int; higher ids win
// elections). It panics on a nil or uncompilable expert (programmer error
// at construction).
func NewWorker(expert *nn.Network, id int) *Worker {
	return NewWorkerSnapshot(nn.MustSnapshot(expert), id)
}

// NewWorkerSnapshot wraps an already-compiled snapshot for serving, for
// callers that share one snapshot between serving and other consumers.
func NewWorkerSnapshot(snap *nn.Snapshot, id int) *Worker {
	if snap == nil {
		panic("cluster: worker needs an expert snapshot")
	}
	w := &Worker{
		id:       id,
		conns:    make(map[net.Conn]struct{}),
		counters: metrics.NewCounterSet(),
		hists:    metrics.NewHistogramSet(),
		tracer:   &tracerRef{},
		roster:   NewRoster(),
	}
	w.snap.Store(snap)
	return w
}

// SwapSnapshot hot-swaps the serving expert: in-flight predicts finish on
// the snapshot they loaded, later requests run on the new one. version
// labels the new model (reported in announce exchanges). This is what a
// MsgModelPush applies; it is also exported for co-located swaps (e.g. a
// -swap-watch reload in teamnet-node).
func (w *Worker) SwapSnapshot(snap *nn.Snapshot, version string) {
	if snap == nil {
		panic("cluster: worker needs an expert snapshot")
	}
	w.snap.Store(snap)
	w.mu.Lock()
	w.version = version
	w.mu.Unlock()
	w.counters.Counter("model.swaps").Inc()
}

// SetModelVersion labels the currently served model without swapping
// weights (the startup label, derived from the bundle hash in teamnet-node).
func (w *Worker) SetModelVersion(version string) {
	w.mu.Lock()
	w.version = version
	w.mu.Unlock()
}

// ModelVersion returns the served model's version label.
func (w *Worker) ModelVersion() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.version
}

// Member returns this worker's membership descriptor (valid after Listen).
func (w *Worker) Member() Member {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Member{Role: RoleWorker, Addr: w.addr, ID: w.id, Version: w.version}
}

// Roster exposes the worker's membership view.
func (w *Worker) Roster() *Roster { return w.roster }

// Counters exposes the worker's serving counters ("requests",
// "panics.recovered", ...).
func (w *Worker) Counters() *metrics.CounterSet { return w.counters }

// Histograms exposes the worker's latency histograms ("predict" — expert
// compute time per served request).
func (w *Worker) Histograms() *metrics.HistogramSet { return w.hists }

// SetTracer installs (or, with nil, removes) the worker's span collector.
// Requests carrying a trace trailer then record "worker.predict" spans
// correlated with the master's trace ids.
func (w *Worker) SetTracer(tr *trace.Tracer) { w.tracer.set(tr) }

// Tracer returns the installed tracer (nil when tracing is off).
func (w *Worker) Tracer() *trace.Tracer { return w.tracer.get() }

// Listen binds to addr (use "127.0.0.1:0" for tests) and serves in the
// background. It returns the bound address.
func (w *Worker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: worker listen %s: %w", addr, err)
	}
	w.mu.Lock()
	w.ln = ln
	w.addr = ln.Addr().String()
	w.mu.Unlock()
	w.wg.Add(1)
	go w.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (w *Worker) acceptLoop(ln net.Listener) {
	defer w.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.handleConn(conn)
	}
}

// handleConn is the per-connection serving goroutine. The recover is the
// worker's last line of defense: serveConn promises that a malformed
// request costs one error frame, but a panic escaping the predict recover
// (decode, trace or encode paths) must cost only this connection — never
// the serving process.
func (w *Worker) handleConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	defer func() {
		if r := recover(); r != nil {
			w.counters.Counter("panics.recovered").Inc()
		}
	}()
	w.serveConn(conn)
}

// workerMuxWindow bounds the mux requests one connection may have in
// flight on the worker: the read loop blocks past it, so a flooding client
// gets TCP backpressure instead of unbounded handler goroutines. The
// snapshot itself has no concurrency limit — this window is the worker's
// only compute-parallelism bound.
const workerMuxWindow = 64

// connWriter serializes frame writes on one connection: the serial read
// loop and the concurrent mux handlers interleave whole frames, never
// bytes.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (cw *connWriter) write(typ byte, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return transport.WriteFrame(cw.conn, typ, payload)
}

func (w *Worker) serveConn(conn net.Conn) {
	cw := &connWriter{conn: conn}
	sem := make(chan struct{}, workerMuxWindow)
	for {
		typ, payload, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgPredict:
			w.counters.Counter("requests").Inc()
			result, errText, decodeFailed := w.runPredict(payload)
			if decodeFailed {
				_ = cw.write(MsgError, []byte(errText))
				return
			}
			if errText != "" {
				// A malformed tensor that panics inside the NN must cost
				// one MsgError, never the serving goroutine: answer and
				// keep the connection alive for the next request.
				if err := cw.write(MsgError, []byte(errText)); err != nil {
					return
				}
				continue
			}
			if err := cw.write(MsgResult, result); err != nil {
				return
			}
		case MsgPredictMux:
			w.counters.Counter("requests").Inc()
			w.counters.Counter("requests.mux").Inc()
			id, body, err := splitMuxID(payload)
			if err != nil {
				// No request id to address a mux error to: the stream is
				// unusable, answer serially and drop the connection.
				_ = cw.write(MsgError, []byte(err.Error()))
				return
			}
			// Dispatch concurrently onto the expert snapshot; the semaphore
			// bounds handlers per connection, replies write out of order
			// under the connection's write lock.
			sem <- struct{}{}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						w.counters.Counter("panics.recovered").Inc()
						conn.Close() // a panicking handler poisons only this connection
					}
				}()
				w.serveMuxPredict(cw, id, body)
			}()
		case MsgSplitPredict:
			w.counters.Counter("requests").Inc()
			w.counters.Counter("requests.split").Inc()
			id, body, err := splitMuxID(payload)
			if err != nil {
				_ = cw.write(MsgError, []byte(err.Error()))
				return
			}
			// Same dispatch discipline as MsgPredictMux: split tails share the
			// connection's handler window and write lock with query traffic.
			sem <- struct{}{}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						w.counters.Counter("panics.recovered").Inc()
						conn.Close()
					}
				}()
				result, errText := runSplitBody(w.snap.Load(), w.ModelVersion(), body, w.tracer, w.hists)
				if errText != "" {
					_ = cw.write(MsgErrorMux, appendMuxID(id, []byte(errText)))
					return
				}
				_ = cw.write(MsgSplitResult, appendMuxID(id, result))
			}()
		case MsgPing:
			if err := cw.write(MsgPong, nil); err != nil {
				return
			}
		case MsgElection:
			// Bully: any node hearing an election from a lower id answers
			// OK (it will run its own election).
			if err := cw.write(MsgElectionOK, electionReply(w.id)); err != nil {
				return
			}
		case MsgAnnounce:
			reply, aerr := handleAnnounce(w.roster, w.Member(), payload)
			if aerr != nil {
				_ = cw.write(MsgError, []byte(aerr.Error()))
				return
			}
			if err := cw.write(MsgAnnounceOK, reply); err != nil {
				return
			}
		case MsgModelPush:
			version, perr := w.applyModelPush(payload)
			if perr != nil {
				// A bad push costs one error frame, not the connection:
				// the frame boundary is intact.
				if err := cw.write(MsgError, []byte(perr.Error())); err != nil {
					return
				}
				continue
			}
			if err := cw.write(MsgModelPushOK, []byte(version)); err != nil {
				return
			}
		default:
			_ = cw.write(MsgError, []byte(fmt.Sprintf("unknown frame type %d", typ)))
			return
		}
	}
}

// serveMuxPredict answers one pipelined request with the matching
// MsgResultMux / MsgErrorMux frame. Unlike the serial path, a decode error
// never drops the connection — the frame boundary is intact and other
// requests are pipelined behind it.
func (w *Worker) serveMuxPredict(cw *connWriter, id uint32, body []byte) {
	result, errText, _ := w.runPredict(body)
	if errText != "" {
		_ = cw.write(MsgErrorMux, appendMuxID(id, []byte(errText)))
		return
	}
	_ = cw.write(MsgResultMux, appendMuxID(id, result))
}

// runPredict decodes one predict body (tensor plus optional trace
// trailer), runs the expert snapshot on it, and returns the encoded
// result payload — or an error message, with decodeFailed distinguishing
// an undecodable body from a failed prediction.
func (w *Worker) runPredict(body []byte) (result []byte, errText string, decodeFailed bool) {
	x, used, err := transport.DecodeTensor(body)
	if err != nil {
		return nil, err.Error(), true
	}
	// Trace context rides as a trailer after the tensor; absent on
	// untraced masters and pre-trace builds.
	ctx := extractTraceContext(body[used:])
	start := time.Now()
	res, perr := w.predict(x)
	compute := time.Since(start)
	w.hists.Observe("predict", compute)
	if ctx.Valid() {
		status := ""
		if perr != nil {
			status = trace.StatusError
		}
		w.tracer.get().Record(ctx, "worker.predict", "", status, start, compute)
	}
	if perr != nil {
		return nil, perr.Error(), false
	}
	// The compute-time trailer is always appended — old masters ignore it,
	// new ones use it for the network/compute split.
	return appendComputeTime(EncodeResult(res), compute), "", false
}

// predict runs the expert snapshot on x (step 3 of Fig 1d) and pairs
// every row with its predictive entropy. A panic inside the snapshot
// (shape mismatch from a hostile or corrupted tensor) is recovered into an
// error so the node keeps serving.
func (w *Worker) predict(x *tensor.Tensor) (res PredictResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.counters.Counter("panics.recovered").Inc()
			err = fmt.Errorf("cluster: predict panic: %v", r)
		}
	}()
	probs, ent := w.snap.Load().PredictWithEntropy(x)
	return PredictResult{Probs: probs, Entropy: ent.Data}, nil
}

// applyModelPush decodes and applies one MsgModelPush: swap the expert when
// the push carries weights, or just re-label on a version-only push. The
// swap happens before the ack is written, so a successful PushModel means
// the worker is already serving the new version.
func (w *Worker) applyModelPush(payload []byte) (version string, err error) {
	version, snap, err := DecodeModelPush(payload)
	if err != nil {
		return "", err
	}
	if snap != nil {
		w.SwapSnapshot(snap, version)
	} else {
		w.SetModelVersion(version)
	}
	return version, nil
}

// ID returns the worker's election identity.
func (w *Worker) ID() int { return w.id }

// Close stops serving and closes open connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	ln := w.ln
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	w.wg.Wait()
	return err
}
