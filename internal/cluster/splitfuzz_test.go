package cluster

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// Fuzz targets for the split-frame codec: MsgSplitPredict and
// MsgSplitResult payloads arrive from the network, so the decoders must be
// total — any byte string either parses into a frame whose re-encoding is
// exactly the bytes consumed (retraction), or fails cleanly. The seed
// corpora run as ordinary tests on every `make verify`, the fuzz engines on
// demand via `go test -fuzz`.

// splitRequestSeeds covers the request grammar: valid frames at both
// version-length extremes, every truncation point, and a header that lies
// about its tensor size.
func splitRequestSeeds() [][]byte {
	rng := tensor.NewRNG(17)
	valid := EncodeSplitRequest(SplitRequest{Version: "v1", Split: 3, X: rng.Randn(2, 5)})
	long := EncodeSplitRequest(SplitRequest{Version: string(bytes.Repeat([]byte{'x'}, 300)), Split: 0, X: rng.Randn(1, 1)})
	return [][]byte{
		valid,
		long,
		EncodeSplitRequest(SplitRequest{X: rng.Randn(1, 4)}), // empty version
		{},                      // empty
		{0x00},                  // truncated at version length
		{0xFF, 0xFF},            // version length with no version bytes
		valid[:2],               // version length only
		valid[:len(valid)-1],    // truncated inside the tensor
		{0, 0, 0, 0, 0, 3, 255}, // tensor rank 255 with no dims
		// tensor dims whose product overflows the element cap
		append([]byte{0, 0, 0, 0, 0, 0}, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	}
}

// checkSplitRequestBytes is the invariant both the fuzz target and the seed
// corpus test enforce.
func checkSplitRequestBytes(t *testing.T, data []byte) {
	t.Helper()
	req, used, err := DecodeSplitRequest(data)
	if err != nil {
		return
	}
	if used < 0 || used > len(data) {
		t.Fatalf("consumed %d of %d bytes", used, len(data))
	}
	size := 1
	for _, d := range req.X.Shape {
		size *= d
	}
	if size != len(req.X.Data) {
		t.Fatalf("shape %v inconsistent with %d elements", req.X.Shape, len(req.X.Data))
	}
	if got := EncodeSplitRequest(req); !bytes.Equal(got, data[:used]) {
		t.Fatalf("re-encoding is not the consumed bytes: %d vs %d", len(got), used)
	}
}

func FuzzDecodeSplitRequest(f *testing.F) {
	for _, s := range splitRequestSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSplitRequestBytes(t, data)
	})
}

func TestDecodeSplitRequestSeedCorpus(t *testing.T) {
	for i, s := range splitRequestSeeds() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", i, r)
				}
			}()
			checkSplitRequestBytes(t, s)
		}()
	}
}

// splitResultSeeds covers the result grammar, including a frame with the
// compute-timing trailer the client strips off and a row/entropy mismatch
// the decoder must refuse.
func splitResultSeeds() [][]byte {
	rng := tensor.NewRNG(19)
	res := PredictResult{Probs: rng.RandUniform(0, 1, 3, 4), Entropy: []float64{0.1, 0.5, 0.9}}
	valid := encodeSplitResult(res)
	mismatch := append(transport.EncodeTensor64(rng.Randn(3, 4)), transport.EncodeFloats([]float64{0.1})...)
	rank1 := append(transport.EncodeTensor64(rng.Randn(4)), transport.EncodeFloats([]float64{0.1})...)
	return [][]byte{
		valid,
		appendComputeTime(valid, 1500*time.Microsecond),
		mismatch,
		rank1,
		{},
		valid[:5],
		valid[:len(valid)-3],
	}
}

func checkSplitResultBytes(t *testing.T, data []byte) {
	t.Helper()
	res, rest, err := decodeSplitResultRest(data)
	if err != nil {
		return
	}
	if len(res.Probs.Shape) != 2 {
		t.Fatalf("accepted rank-%d probs", len(res.Probs.Shape))
	}
	if res.Probs.Shape[0] != len(res.Entropy) {
		t.Fatalf("accepted %d rows with %d entropies", res.Probs.Shape[0], len(res.Entropy))
	}
	used := len(data) - len(rest)
	if got := encodeSplitResult(res); !bytes.Equal(got, data[:used]) {
		t.Fatalf("re-encoding is not the consumed bytes: %d vs %d", len(got), used)
	}
}

func FuzzDecodeSplitResult(f *testing.F) {
	for _, s := range splitResultSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSplitResultBytes(t, data)
	})
}

func TestDecodeSplitResultSeedCorpus(t *testing.T) {
	for i, s := range splitResultSeeds() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", i, r)
				}
			}()
			checkSplitResultBytes(t, s)
		}()
	}
}

// TestSplitRequestRoundTripExact pins full-precision transport: the
// activation crosses the wire bit-for-bit (the query path's float32
// quantization would break the split contract).
func TestSplitRequestRoundTripExact(t *testing.T) {
	rng := tensor.NewRNG(23)
	x := rng.Randn(4, 17)
	req := SplitRequest{Version: "sha256:abcd", Split: 6, X: x}
	enc := EncodeSplitRequest(req)
	got, used, err := DecodeSplitRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d", used, len(enc))
	}
	if got.Version != req.Version || got.Split != req.Split {
		t.Fatalf("header corrupted: %+v", got)
	}
	for i := range x.Data {
		if math.Float64bits(got.X.Data[i]) != math.Float64bits(x.Data[i]) {
			t.Fatalf("activation[%d] not bit-exact", i)
		}
	}
	// The trailer convention: trace context after the request must survive.
	withTrailer := append(append([]byte{}, enc...), 0xDE, 0xAD)
	_, used2, err := DecodeSplitRequest(withTrailer)
	if err != nil || used2 != len(enc) {
		t.Fatalf("trailing bytes broke the decode: used %d err %v", used2, err)
	}
}

// TestSplitVersionMismatchErrorRoundTrip pins the typed-error wire
// convention: the refusal text survives the network and rehydrates into
// ErrSplitVersionMismatch, while other worker errors stay generic.
func TestSplitVersionMismatchErrorRoundTrip(t *testing.T) {
	text := splitVersionMismatchPrefix + `serving "v2", head computed against "v1"`
	if err := splitErrorFromText(text); !errors.Is(err, ErrSplitVersionMismatch) {
		t.Fatalf("mismatch text rehydrated as %v", err)
	}
	if err := splitErrorFromText("disk on fire"); errors.Is(err, ErrSplitVersionMismatch) {
		t.Fatal("generic error rehydrated as version mismatch")
	}
}
