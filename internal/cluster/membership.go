package cluster

// Fabric membership: who is serving what, learned over the same supervised
// TCP links the inference traffic rides on. There is no central registry —
// every node keeps a Roster, and every MsgAnnounce exchange merges both
// sides' views (the announcement carries the sender's own descriptor plus a
// bounded sample of its roster), so reachability information spreads
// epidemically: a gateway that bootstraps against one master learns about
// the others within a couple of announce rounds. Entries expire when not
// re-announced within a TTL, which is how leaves and crashes age out
// without a failure detector of their own — routing-level health (the
// router's cooldowns, the supervisor's breakers) reacts much faster; the
// roster only has to be eventually right.

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/transport"
)

// Member roles.
const (
	RoleMaster  = "master"
	RoleWorker  = "worker"
	RoleGateway = "gateway"
)

// Member describes one fabric node: its role, the address it serves on
// (empty for nodes that only consume, e.g. a pure gateway), its election
// identity and the model version it currently serves.
type Member struct {
	Role    string `json:"role"`
	Addr    string `json:"addr"`
	ID      int    `json:"id"`
	Version string `json:"version,omitempty"`
}

// key is the roster identity: one entry per (role, addr).
func (m Member) key() string { return m.Role + "|" + m.Addr }

// announcement is the MsgAnnounce / MsgAnnounceOK wire payload.
type announcement struct {
	From  Member   `json:"from"`
	Known []Member `json:"known,omitempty"`
}

// maxGossip bounds how many roster entries ride along with one announce, so
// a large fleet's announcements stay one small frame.
const maxGossip = 64

// Roster is the mutable membership view one node maintains. Safe for
// concurrent use.
type Roster struct {
	mu      sync.Mutex
	entries map[string]rosterEntry
}

type rosterEntry struct {
	m    Member
	seen time.Time
	// direct marks a first-hand entry: the member itself announced, rather
	// than a third node gossiping about it. First-hand data outranks gossip
	// — see Merge.
	direct bool
}

// NewRoster returns an empty roster.
func NewRoster() *Roster {
	return &Roster{entries: make(map[string]rosterEntry)}
}

// Upsert records (or refreshes) one member from a first-hand announcement
// — the member itself spoke, so its descriptor (in particular Version) is
// authoritative and unconditionally replaces whatever the roster held.
// This is what makes re-admission after a TTL expiry clean: a node that
// crashed, aged out, and came back under a new model version is live again
// with the new version the moment it re-announces, regardless of what
// stale gossip said meanwhile. Members without an address are not tracked —
// there is nothing to route to or gossip about.
func (r *Roster) Upsert(m Member) {
	if m.Addr == "" {
		return
	}
	r.mu.Lock()
	r.entries[m.key()] = rosterEntry{m: m, seen: time.Now(), direct: true}
	r.mu.Unlock()
}

// Merge folds in a gossip sample (the Known half of an announce exchange).
// Gossip is second-hand and carries no timestamps, so it ranks below
// first-hand data: it may introduce members this node has never met and
// refresh or update entries that were themselves learned from gossip, but
// it never rewrites a first-hand entry with different data — a stale echo
// of a member's pre-crash descriptor must not clobber (or keep refreshing)
// the descriptor the re-admitted member announced itself.
func (r *Roster) Merge(ms []Member) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		if m.Addr == "" {
			continue
		}
		k := m.key()
		if e, ok := r.entries[k]; ok && e.direct {
			if e.m != m {
				continue // stale echo about a member we know first-hand
			}
			e.seen = time.Now()
			r.entries[k] = e // confirming echo refreshes without demoting
			continue
		}
		r.entries[k] = rosterEntry{m: m, seen: time.Now()}
	}
}

// Expire drops entries not refreshed within ttl and returns how many died.
func (r *Roster) Expire(ttl time.Duration) int {
	cutoff := time.Now().Add(-ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, e := range r.entries {
		if e.seen.Before(cutoff) {
			delete(r.entries, k)
			n++
		}
	}
	return n
}

// Snapshot returns the current membership, sorted by role then address for
// deterministic iteration.
func (r *Roster) Snapshot() []Member {
	r.mu.Lock()
	out := make([]Member, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Masters returns the addresses of every known master.
func (r *Roster) Masters() []string {
	var out []string
	for _, m := range r.Snapshot() {
		if m.Role == RoleMaster {
			out = append(out, m.Addr)
		}
	}
	return out
}

// Len reports the entry count.
func (r *Roster) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// gossipSample returns at most maxGossip members to ride along an announce.
func (r *Roster) gossipSample() []Member {
	ms := r.Snapshot()
	if len(ms) > maxGossip {
		ms = ms[:maxGossip]
	}
	return ms
}

// encodeAnnouncement serializes one announce payload.
func encodeAnnouncement(from Member, known []Member) []byte {
	b, _ := json.Marshal(announcement{From: from, Known: known})
	return b
}

// decodeAnnouncement parses one announce payload.
func decodeAnnouncement(payload []byte) (announcement, error) {
	var a announcement
	if err := json.Unmarshal(payload, &a); err != nil {
		return announcement{}, fmt.Errorf("cluster: decode announcement: %w", err)
	}
	return a, nil
}

// handleAnnounce is the server half of one exchange: merge the sender's
// view into roster, then answer with self plus a gossip sample. Shared by
// workers and master servers.
func handleAnnounce(roster *Roster, self Member, payload []byte) (reply []byte, err error) {
	a, err := decodeAnnouncement(payload)
	if err != nil {
		return nil, err
	}
	roster.Upsert(a.From)
	roster.Merge(a.Known)
	return encodeAnnouncement(self, roster.gossipSample()), nil
}

// Announce performs the client half of one membership exchange: dial addr,
// present self (and a sample of known peers), and merge the reply into
// roster. It returns the remote's own descriptor. Gateways call this
// against their bootstrap masters on a timer; the reply's gossip is how
// they discover masters they were never configured with.
func Announce(addr string, self Member, roster *Roster, timeout time.Duration) (Member, error) {
	conn, err := transport.Dial(addr, timeout)
	if err != nil {
		return Member{}, fmt.Errorf("cluster: announce dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	var known []Member
	if roster != nil {
		known = roster.gossipSample()
	}
	if err := transport.WriteFrame(conn, MsgAnnounce, encodeAnnouncement(self, known)); err != nil {
		return Member{}, fmt.Errorf("cluster: announce %s: %w", addr, err)
	}
	typ, payload, err := transport.ReadFrame(conn)
	if err != nil {
		return Member{}, fmt.Errorf("cluster: announce %s: %w", addr, err)
	}
	if typ == MsgError {
		return Member{}, fmt.Errorf("cluster: announce %s: %s", addr, payload)
	}
	if typ != MsgAnnounceOK {
		return Member{}, fmt.Errorf("cluster: announce %s: unexpected frame type %d", addr, typ)
	}
	a, err := decodeAnnouncement(payload)
	if err != nil {
		return Member{}, err
	}
	if roster != nil {
		roster.Upsert(a.From)
		roster.Merge(a.Known)
	}
	return a.From, nil
}
