package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// spanByName indexes one trace's spans; duplicate names keep the first.
func spanByName(spans []trace.Span) map[string]trace.Span {
	out := make(map[string]trace.Span)
	for _, s := range spans {
		if _, ok := out[s.Name]; !ok {
			out[s.Name] = s
		}
	}
	return out
}

// TestTracePropagationOverTCP is the tentpole acceptance check: one traced
// query against a real TCP worker produces a master-side span tree whose
// network+compute split sums to (at most) the query total, and the worker
// records its own span under the SAME trace id — propagated on the wire,
// not shared in memory.
func TestTracePropagationOverTCP(t *testing.T) {
	worker := NewWorker(tinyExpert(t, 70), 1)
	workerTr := trace.New("worker", 0)
	worker.SetTracer(workerTr)
	addr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	master := NewMaster(tinyExpert(t, 71), 3)
	defer master.Close()
	masterTr := trace.New("master", 0)
	master.SetTracer(masterTr)
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}

	x := tensor.NewRNG(72).Randn(1, 4)
	if _, _, err := master.Infer(x); err != nil {
		t.Fatal(err)
	}

	ids := masterTr.TraceIDs(1)
	if len(ids) != 1 {
		t.Fatalf("master recorded %d traces, want 1", len(ids))
	}
	spans := masterTr.Trace(ids[0])
	by := spanByName(spans)
	for _, name := range []string{"infer", "serialize", "peer " + addr, "network", "compute", "local.compute", "gate"} {
		if _, ok := by[name]; !ok {
			t.Fatalf("master trace missing span %q; have %v", name, spans)
		}
	}
	// The per-peer split is the paper's decomposition: network + compute
	// must fit inside the query total (the rest is serialize/gate/local).
	total := by["infer"].Duration
	split := by["network"].Duration + by["compute"].Duration
	if split <= 0 || split > total {
		t.Fatalf("network+compute = %v outside (0, total=%v]", split, total)
	}
	if by["compute"].Node != addr {
		t.Fatalf("compute span attributed to %q, want worker %q", by["compute"].Node, addr)
	}
	// Tree structure: peer span parents network and compute.
	peer := by["peer "+addr]
	if by["network"].ParentID != peer.SpanID || by["compute"].ParentID != peer.SpanID {
		t.Fatal("network/compute spans not parented to the peer span")
	}

	// Worker side: the trace id crossed the TCP connection.
	deadline := time.Now().Add(2 * time.Second)
	for workerTr.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	wspans := workerTr.Snapshot(0)
	if len(wspans) == 0 {
		t.Fatal("worker recorded no spans for a traced query")
	}
	ws := wspans[len(wspans)-1]
	if ws.Name != "worker.predict" {
		t.Fatalf("worker span name %q", ws.Name)
	}
	if ws.TraceID != ids[0] {
		t.Fatalf("worker trace id %x != master trace id %x", ws.TraceID, ids[0])
	}
	if ws.ParentID != by["infer"].SpanID {
		t.Fatalf("worker span parent %x != query root span %x", ws.ParentID, by["infer"].SpanID)
	}
}

// TestTraceOldWorkerInterop drives a traced master against a minimal
// hand-rolled "old" worker that decodes the tensor with the pre-trace codec
// and answers without any trailer: the trailer must be ignored and the
// query must succeed, just without a remote-compute span.
func TestTraceOldWorkerInterop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Like every pre-mux build, the fake rejects unknown frame types with a
	// serial MsgError and hangs up — which is exactly what the new master's
	// first MsgPredictMux probe receives, downgrading the peer to serial —
	// and keeps accepting, so the downgraded master can redial.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					typ, payload, err := transport.ReadFrame(conn)
					if err != nil {
						return
					}
					if typ == MsgPing {
						transport.WriteFrame(conn, MsgPong, nil) //nolint:errcheck
						continue
					}
					if typ != MsgPredict {
						transport.WriteFrame(conn, MsgError, []byte(fmt.Sprintf("unknown frame type %d", typ))) //nolint:errcheck
						return
					}
					// Old decoder: consume the tensor, ignore whatever follows
					// (that "whatever" is the new trace trailer).
					x, _, err := transport.DecodeTensor(payload)
					if err != nil {
						transport.WriteFrame(conn, MsgError, []byte(err.Error())) //nolint:errcheck
						return
					}
					probs := tensor.New(x.Shape[0], 3)
					for b := 0; b < x.Shape[0]; b++ {
						probs.RowSlice(b)[0] = 1
					}
					res := PredictResult{Probs: probs, Entropy: make([]float64, x.Shape[0])}
					// No timing trailer: pre-trace wire format.
					if err := transport.WriteFrame(conn, MsgResult, EncodeResult(res)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	master := NewMaster(nil, 3)
	defer master.Close()
	masterTr := trace.New("master", 0)
	master.SetTracer(masterTr)
	if err := master.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(73).Randn(1, 4)
	if _, _, err := master.Infer(x); err != nil {
		t.Fatalf("traced master against old worker: %v", err)
	}
	ids := masterTr.TraceIDs(1)
	if len(ids) != 1 {
		t.Fatal("no trace recorded")
	}
	by := spanByName(masterTr.Trace(ids[0]))
	if _, ok := by["network"]; !ok {
		t.Fatal("round trip span missing")
	}
	if _, ok := by["compute"]; ok {
		t.Fatal("old worker cannot report compute time, yet a compute span appeared")
	}
}

// TestNewWorkerUntracedMasterAppendsHarmlessTrailer covers the reverse
// direction: a new worker always appends the timing trailer, and an
// untraced master (which uses the strict pre-trace decode path via
// DecodeResult's trailing-byte tolerance) still round-trips correctly.
func TestNewWorkerUntracedMasterInterop(t *testing.T) {
	worker := NewWorker(tinyExpert(t, 74), 1)
	addr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	master := NewMaster(nil, 3) // no SetTracer: no trailer on requests
	defer master.Close()
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(75).Randn(2, 4)
	probs, winners, err := master.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if probs.Shape[0] != 2 || len(winners) != 2 {
		t.Fatalf("bad result shape %v / %d winners", probs.Shape, len(winners))
	}
}

// TestBestEffortTagsQuarantinedPeerSkipped: the satellite bugfix — a
// quarantined peer must appear in the span tree tagged skipped, not vanish.
func TestBestEffortTagsQuarantinedPeerSkipped(t *testing.T) {
	worker := NewWorker(tinyExpert(t, 76), 1)
	addr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	master := NewMaster(tinyExpert(t, 77), 3)
	defer master.Close()
	master.SetSupervisor(fastSupervisor())
	master.SetTimeout(200 * time.Millisecond)
	masterTr := trace.New("master", 0)
	master.SetTracer(masterTr)
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}

	// Kill the worker and burn through the failure threshold.
	worker.Close()
	x := tensor.NewRNG(78).Randn(1, 4)
	for i := 0; i < 6; i++ {
		if _, _, _, err := master.InferBestEffort(x); err != nil {
			t.Fatal(err)
		}
		if h := master.Health(); len(h) == 1 && h[0].State == PeerOpen {
			break
		}
	}
	waitForPeerState(t, master, 0, PeerOpen, 2*time.Second)

	if _, _, live, err := master.InferBestEffort(x); err != nil {
		t.Fatal(err)
	} else if live != 1 {
		t.Fatalf("live = %d, want 1 (local only)", live)
	}
	ids := masterTr.TraceIDs(1)
	if len(ids) != 1 {
		t.Fatal("no trace recorded")
	}
	var skipped bool
	for _, s := range masterTr.Trace(ids[0]) {
		if s.Name == "peer "+addr && s.Status == trace.StatusSkipped {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("no skipped span for quarantined peer in %v", masterTr.Trace(ids[0]))
	}
}

// TestPingRecordsLatencyHistogram: the satellite bugfix — Master.Ping and
// the supervisor's probes must feed the latency histograms instead of
// discarding their timings.
func TestPingRecordsLatencyHistogram(t *testing.T) {
	worker := NewWorker(tinyExpert(t, 79), 1)
	addr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	master := NewMaster(nil, 3)
	defer master.Close()
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := master.Ping(); err != nil {
		t.Fatal(err)
	}
	h := master.Histograms().Histogram("peer." + addr + ".ping")
	if h.Count() < 1 {
		t.Fatal("Ping did not record a latency sample")
	}
	if h.Sum() <= 0 {
		t.Fatal("ping histogram recorded a zero-duration sample")
	}
}
