package cluster

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/chaos"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// Mux transport tests: the tentpole of the concurrent-inference PR. The
// serial protocol allowed one in-flight request per peer link; these tests
// pin the pipelined replacement — many concurrent Infers share one link,
// results match the serial path bit-for-bit, link death fails every pending
// request fast while feeding the breaker exactly once, and mixed-version
// fleets (old master or old worker) keep working. All run under -race via
// the verify target.

// snapshotWorker starts a worker serving one seeded expert snapshot.
func snapshotWorker(t *testing.T, seed int64, id int) (*Worker, string) {
	t.Helper()
	w := NewWorker(tinyExpert(t, seed), id)
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, addr
}

// TestMuxConcurrentInfer is the acceptance check for the pipeline: many
// goroutines drive Infer and InferBestEffort through one mux link against a
// snapshot worker, every result matches the serial protocol's answer, the
// worker demonstrably served over mux, and the in-flight gauge drains back
// to zero.
func TestMuxConcurrentInfer(t *testing.T) {
	worker, addr := snapshotWorker(t, 90, 1)

	// Reference answer via the serial protocol (SetMux(false) is the
	// pre-mux wire behavior).
	serial := NewMaster(tinyExpert(t, 91), 3)
	serial.SetMux(false)
	if err := serial.Connect(addr); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(92).Randn(3, 4)
	wantProbs, wantWinners, err := serial.Infer(x)
	serial.Close()
	if err != nil {
		t.Fatal(err)
	}
	if worker.Counters().Counter("requests.mux").Value() != 0 {
		t.Fatal("serial-mode master reached the worker over mux")
	}

	master := NewMaster(tinyExpert(t, 91), 3)
	defer master.Close()
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 16, 5
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var probs *tensor.Tensor
				var winners []int
				var err error
				if g%2 == 0 {
					probs, winners, err = master.Infer(x)
				} else {
					var live int
					probs, winners, live, err = master.InferBestEffort(x)
					if err == nil && live != 2 {
						t.Errorf("live = %d, want 2", live)
					}
				}
				if err != nil {
					errCh <- err
					return
				}
				for b := 0; b < x.Shape[0]; b++ {
					if winners[b] != wantWinners[b] {
						t.Errorf("winners[%d] = %d over mux, %d over serial", b, winners[b], wantWinners[b])
						return
					}
					if !bytes.Equal(transport.EncodeTensor(probs), transport.EncodeTensor(wantProbs)) {
						t.Error("mux probs differ from serial probs")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent infer over mux: %v", err)
	}

	if got := worker.Counters().Counter("requests.mux").Value(); got < goroutines*rounds {
		t.Fatalf("worker served %d mux requests, want ≥ %d", got, goroutines*rounds)
	}
	if d := master.Counters().Counter("peer." + addr + ".mux_downgrades").Value(); d != 0 {
		t.Fatalf("healthy new worker was downgraded %d times", d)
	}
	// The pipeline drained: nothing in flight, nothing queued.
	if v := master.Gauges().Gauge("mux.inflight").Value(); v != 0 {
		t.Fatalf("mux.inflight = %d after drain, want 0", v)
	}
	if v := master.Gauges().Gauge("mux.queue_depth").Value(); v != 0 {
		t.Fatalf("mux.queue_depth = %d after drain, want 0", v)
	}
}

// TestMuxLinkDeathFailsPendingAndTripsOnce kills a link mid-pipeline: after
// a proven warmup query the chaos proxy resets every chunk, and a burst of
// concurrent Infers must all fail fast — one link death is one breaker
// strike no matter how many requests were pending, so trips lands at
// exactly 1.
func TestMuxLinkDeathFailsPendingAndTripsOnce(t *testing.T) {
	proxy, sick := chaosWorker(t, 93, 1)

	master := NewMaster(nil, 3) // peer-only: a dead link fails Infer outright
	defer master.Close()
	master.SetSupervisor(SupervisorConfig{
		MaxRetries:       0,
		FailureThreshold: 1,
		DialTimeout:      time.Second,
		RetryBackoff:     &transport.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		// Probe far beyond the test horizon: the breaker must stay open so
		// the trip count is unambiguous.
		ProbeBackoff: &transport.Backoff{Base: 30 * time.Second, Max: 30 * time.Second},
	})
	master.SetTimeout(500 * time.Millisecond)
	if err := master.Connect(sick); err != nil {
		t.Fatal(err)
	}

	// Warmup proves the mux link, so the coming link death reads as a fault,
	// never as a pre-mux downgrade.
	x := tensor.NewRNG(94).Randn(1, 4)
	if _, _, err := master.Infer(x); err != nil {
		t.Fatalf("warmup through transparent proxy: %v", err)
	}

	proxy.SetPlan(chaos.Fault{Mode: chaos.Reset, Prob: 1})
	const pending = 8
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, pending)
	for i := 0; i < pending; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = master.Infer(x)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range errs {
		if err == nil {
			t.Fatalf("query %d succeeded across a dead link", i)
		}
	}
	// Fail-fast: the first error tears the pipeline down and fans out to
	// every waiter; nobody sits out a full per-request timeout chain.
	if elapsed > 3*time.Second {
		t.Fatalf("%d pending queries took %v to fail", pending, elapsed)
	}
	h := master.Health()[0]
	if h.Trips != 1 {
		t.Fatalf("breaker tripped %d times for one link death, want 1: %+v", h.Trips, h)
	}
	if h.State != PeerOpen {
		t.Fatalf("peer state %s after link death, want open", h.State)
	}
	if d := master.Counters().Counter("peer." + sick + ".mux_downgrades").Value(); d != 0 {
		t.Fatalf("proven mux peer was downgraded %d times by a link fault", d)
	}
}

// oldWorker is a minimal pre-mux build: serial MsgPredict/MsgPing/
// MsgElection only, and — like every pre-mux serveConn — it answers unknown
// frame types with a serial MsgError and hangs up.
func oldWorker(t *testing.T, electionID int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					typ, payload, err := transport.ReadFrame(conn)
					if err != nil {
						return
					}
					switch typ {
					case MsgPing:
						transport.WriteFrame(conn, MsgPong, nil) //nolint:errcheck
					case MsgElection:
						// The pre-fix bug: the id truncated to one byte.
						transport.WriteFrame(conn, MsgElectionOK, []byte{byte(electionID)}) //nolint:errcheck
					case MsgPredict:
						x, _, derr := transport.DecodeTensor(payload)
						if derr != nil {
							transport.WriteFrame(conn, MsgError, []byte(derr.Error())) //nolint:errcheck
							return
						}
						probs := tensor.New(x.Shape[0], 3)
						ent := make([]float64, x.Shape[0])
						for b := 0; b < x.Shape[0]; b++ {
							probs.RowSlice(b)[0] = 1
							ent[b] = 0.5
						}
						res := EncodeResult(PredictResult{Probs: probs, Entropy: ent})
						if err := transport.WriteFrame(conn, MsgResult, res); err != nil {
							return
						}
					default:
						transport.WriteFrame(conn, MsgError, []byte("unknown frame type")) //nolint:errcheck
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestMuxDowngradeStickyOnOldWorker: a new master's first mux frame to a
// pre-mux worker draws a serial MsgError — the peer must sticky-downgrade
// to the serial protocol (counted once), every query must succeed anyway,
// and the breaker must never be fed for the downgrade.
func TestMuxDowngradeStickyOnOldWorker(t *testing.T) {
	addr := oldWorker(t, 1)

	master := NewMaster(nil, 3)
	defer master.Close()
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(95).Randn(2, 4)
	for i := 0; i < 3; i++ {
		probs, _, err := master.Infer(x)
		if err != nil {
			t.Fatalf("query %d against old worker: %v", i, err)
		}
		if probs.Shape[0] != 2 {
			t.Fatalf("query %d: bad shape %v", i, probs.Shape)
		}
	}
	if d := master.Counters().Counter("peer." + addr + ".mux_downgrades").Value(); d != 1 {
		t.Fatalf("downgrades = %d, want exactly 1 (sticky: no re-probing)", d)
	}
	h := master.Health()[0]
	if h.State != PeerHealthy || h.Failures != 0 || h.Trips != 0 {
		t.Fatalf("downgrade fed the breaker: %+v", h)
	}
}

// TestMuxStaleAdoptedConnNoDowngrade reproduces a worker restarting between
// the master's eager Connect and its first query: the first mux frame dies
// on the stale adopted socket with a silent close. That close must NOT read
// as "pre-mux build" — it is a link fault, the retry redials fresh, the
// restarted worker answers over mux, and the peer keeps the pipelined
// protocol instead of sticky-downgrading to serial.
func TestMuxStaleAdoptedConnNoDowngrade(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	w1 := NewWorker(tinyExpert(t, 102), 1)
	if _, err := w1.Listen(addr); err != nil {
		t.Fatal(err)
	}

	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetTimeout(2 * time.Second)
	if err := master.Connect(addr); err != nil { // eager dial: the soon-stale socket
		t.Fatal(err)
	}

	w1.Close() // restart: same address, new process, master's socket now dead
	w2 := NewWorker(tinyExpert(t, 102), 1)
	if _, err := w2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	x := tensor.NewRNG(103).Randn(1, 4)
	if _, _, err := master.Infer(x); err != nil {
		t.Fatalf("first query after worker restart: %v", err)
	}
	if d := master.Counters().Counter("peer." + addr + ".mux_downgrades").Value(); d != 0 {
		t.Fatalf("stale adopted socket downgraded a mux-capable peer %d times", d)
	}
	if got := w2.Counters().Counter("requests.mux").Value(); got == 0 {
		t.Fatal("restarted worker never served over mux: peer fell back to serial")
	}
	h := master.Health()[0]
	if h.State != PeerHealthy || h.Trips != 0 {
		t.Fatalf("peer did not recover cleanly: %+v", h)
	}
}

// TestOldMasterRawSerialAgainstNewWorker drives the other interop
// direction with a literal pre-mux client: raw serial MsgPredict frames,
// one in flight, against the new worker. The wire answer must be the
// classic MsgResult, and the worker must never count a mux request.
func TestOldMasterRawSerialAgainstNewWorker(t *testing.T) {
	worker, addr := snapshotWorker(t, 96, 1)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	x := tensor.NewRNG(97).Randn(2, 4)
	for i := 0; i < 3; i++ {
		if err := transport.WriteFrame(conn, MsgPredict, transport.EncodeTensor(x)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := transport.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgResult {
			t.Fatalf("reply type %d, want MsgResult", typ)
		}
		res, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if res.Probs.Shape[0] != 2 || len(res.Entropy) != 2 {
			t.Fatalf("bad result %v / %d entropies", res.Probs.Shape, len(res.Entropy))
		}
	}
	if got := worker.Counters().Counter("requests.mux").Value(); got != 0 {
		t.Fatalf("serial client triggered %d mux requests", got)
	}

	// And a whole SetMux(false) master — the supported serial-mode switch —
	// against the same new worker.
	master := NewMaster(nil, 3)
	defer master.Close()
	master.SetMux(false)
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := master.Infer(x); err != nil {
		t.Fatalf("serial-mode master against new worker: %v", err)
	}
	if got := worker.Counters().Counter("requests.mux").Value(); got != 0 {
		t.Fatalf("SetMux(false) master triggered %d mux requests", got)
	}
}

// panicConn is a net.Conn stub whose read side replays canned frames and
// whose write side panics — the hostile case the per-connection recover
// must contain.
type panicConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (c *panicConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.buf.Len() == 0 {
		return 0, io.EOF
	}
	return c.buf.Read(p)
}

func (c *panicConn) Write(p []byte) (int, error) { panic("write side blew up") }
func (c *panicConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
func (c *panicConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *panicConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *panicConn) SetDeadline(t time.Time) error      { return nil }
func (c *panicConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *panicConn) SetWriteDeadline(t time.Time) error { return nil }

// TestWorkerRecoversConnPanic: a panic escaping the serial serve path must
// be recovered by handleConn — counted, fatal only to that connection.
func TestWorkerRecoversConnPanic(t *testing.T) {
	w := NewWorker(tinyExpert(t, 98), 1)
	conn := &panicConn{}
	if err := transport.WriteFrame(&conn.buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	w.wg.Add(1)
	w.handleConn(conn) // ping reply → Write panics → recover
	if got := w.Counters().Counter("panics.recovered").Value(); got != 1 {
		t.Fatalf("panics.recovered = %d, want 1", got)
	}
	if !conn.closed {
		t.Fatal("panicking connection left open")
	}

	// The worker still serves: the panic cost one connection, not the node.
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	master := NewMaster(nil, 3)
	defer master.Close()
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := master.Infer(tensor.NewRNG(99).Randn(1, 4)); err != nil {
		t.Fatalf("worker stopped serving after a recovered panic: %v", err)
	}
}

// TestWorkerRecoversMuxHandlerPanic: the same containment for the
// concurrent mux handlers — each dispatch goroutine recovers, counts, and
// poisons only its own connection.
func TestWorkerRecoversMuxHandlerPanic(t *testing.T) {
	w := NewWorker(tinyExpert(t, 100), 1)
	conn := &panicConn{}
	x := tensor.NewRNG(101).Randn(1, 4)
	payload := appendMuxID(7, transport.EncodeTensor(x))
	if err := transport.WriteFrame(&conn.buf, MsgPredictMux, payload); err != nil {
		t.Fatal(err)
	}
	w.wg.Add(1)
	w.handleConn(conn)
	w.wg.Wait() // the mux handler goroutine panics writing its reply
	if got := w.Counters().Counter("panics.recovered").Value(); got != 1 {
		t.Fatalf("panics.recovered = %d, want 1", got)
	}
	if !conn.closed {
		t.Fatal("panicking mux connection left open")
	}
}
