package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/split"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
	"github.com/teamnet/teamnet/internal/transport"
)

// tracerRef shares one swappable tracer between a master and its peers, so
// SetTracer takes effect on connections made before and after the call. A
// nil tracer (the default) disables span collection; histograms and
// counters are always recorded.
type tracerRef struct {
	mu sync.Mutex
	tr *trace.Tracer
}

func (r *tracerRef) get() *trace.Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr
}

func (r *tracerRef) set(tr *trace.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr = tr
}

// Master is the sensing node of Figure 1(d): it holds its own local expert,
// broadcasts each input to all worker peers (step 2), runs its expert in
// parallel with theirs (step 3), gathers results with uncertainties
// (step 4) and selects the least-uncertain prediction (step 5).
//
// Every peer is supervised (see supervisor.go): broken connections redial
// with backoff, transient errors retry within a bounded budget, and a
// repeatedly-failing peer is quarantined by a circuit breaker and probed
// back into rotation — the master survives worker churn without restarts.
type Master struct {
	// local is this node's frozen expert; nil = pure coordinator. An
	// atomic pointer so a versioned model push can hot-swap the snapshot
	// while inferences are in flight: each query loads the pointer once
	// and runs to completion on whichever snapshot it started with.
	local    atomic.Pointer[nn.Snapshot]
	classes  int
	counters *metrics.CounterSet
	gauges   *metrics.GaugeSet
	hists    *metrics.HistogramSet
	tracer   *tracerRef
	hedge    *hedgeRef
	budget   *budgetRef

	mu        sync.Mutex
	timeout   time.Duration // per-round-trip deadline; 0 = none
	sup       SupervisorConfig
	muxOff    bool // SetMux(false): force the serial one-in-flight protocol
	peers     []*peerConn
	done      chan struct{} // closed by Close; stops retries and probes
	closed    bool
	version   string         // local expert's version label (split pinning)
	splitPl   *split.Planner // partial-offload planner; nil until EnableSplit
	splitOpts split.Options  // options the planner was built with (re-profiling)

	probeWG sync.WaitGroup // background probe loops
}

type peerConn struct {
	addr     string
	counters *metrics.CounterSet
	gauges   *metrics.GaugeSet
	hists    *metrics.HistogramSet
	trc      *tracerRef
	hedge    *hedgeRef
	budget   *budgetRef
	done     <-chan struct{}
	wg       *sync.WaitGroup

	mu      sync.Mutex // serial protocol: one in-flight request per conn
	conn    net.Conn
	timeout time.Duration

	muxMu sync.Mutex // guards the pipelined mux client (see mux.go)
	muxc  *muxClient

	stateMu    sync.Mutex // guards the supervision state machine
	cfg        SupervisorConfig
	state      PeerState
	fails      int
	probing    bool
	closed     bool
	serialOnly bool // sticky downgrade: the peer is a pre-mux build
	muxProven  bool // the peer has answered on the mux protocol
	muxOff     bool // master-level SetMux(false)
}

// NewMaster returns a master with an optional local expert, compiled into
// a frozen inference snapshot so concurrent Infer calls never serialize on
// it. classes is the classifier width, needed to shape gathered results.
// It panics on an uncompilable expert (programmer error at construction).
func NewMaster(local *nn.Network, classes int) *Master {
	m := &Master{
		classes:  classes,
		counters: metrics.NewCounterSet(),
		gauges:   metrics.NewGaugeSet(),
		hists:    metrics.NewHistogramSet(),
		tracer:   &tracerRef{},
		hedge:    &hedgeRef{},
		budget:   &budgetRef{},
		sup:      DefaultSupervisorConfig(),
		done:     make(chan struct{}),
	}
	if local != nil {
		m.local.Store(nn.MustSnapshot(local))
	}
	return m
}

// SwapLocal hot-swaps the local expert for a new frozen snapshot without
// interrupting in-flight inferences: queries that already loaded the old
// snapshot finish on it, later queries see the new one. A nil snapshot
// demotes the master to a pure coordinator. This is the master half of the
// versioned model push (see modelpush.go); the caller is responsible for
// bumping the gateway's model version afterwards so cached answers from the
// old expert are invalidated.
func (m *Master) SwapLocal(snap *nn.Snapshot) {
	m.local.Store(snap)
	m.counters.Counter("model.swaps").Inc()
}

// SetTracer installs (or, with nil, removes) the span collector for every
// subsequent inference: each query then records a span tree decomposing its
// latency into serialize, per-peer network, remote compute and gating.
// Histograms and counters are recorded regardless. Affects peers connected
// before and after the call.
func (m *Master) SetTracer(tr *trace.Tracer) { m.tracer.set(tr) }

// Tracer returns the installed tracer (nil when tracing is off).
func (m *Master) Tracer() *trace.Tracer { return m.tracer.get() }

// Histograms exposes the master's latency histograms: "infer.total",
// "infer.serialize", "infer.gate", "local.compute" and the per-peer
// "peer.<addr>.rtt" / "peer.<addr>.compute" / "peer.<addr>.ping" /
// "peer.<addr>.probe" series.
func (m *Master) Histograms() *metrics.HistogramSet { return m.hists }

// Gauges exposes the master's level metrics: "mux.inflight" (requests
// currently pipelined across all peer links) and "mux.queue_depth"
// (requests waiting for an in-flight window slot).
func (m *Master) Gauges() *metrics.GaugeSet { return m.gauges }

// SetMux enables (the default) or disables the multiplexed peer transport.
// Disabled, every peer round trip uses the serial one-in-flight protocol —
// the pre-mux wire behavior, kept for interop drills and as the benchmark
// baseline. Affects peers connected before and after the call; requests
// already pipelined complete on the mux link.
func (m *Master) SetMux(enabled bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.muxOff = !enabled
	for _, p := range m.peers {
		p.stateMu.Lock()
		p.muxOff = !enabled
		p.stateMu.Unlock()
	}
}

// SetTimeout bounds every subsequent per-peer round trip. A worker that
// exceeds the deadline fails that inference instead of wedging the master —
// on a lossy edge network a bounded error beats an unbounded wait. Zero
// disables the deadline. Affects peers connected before and after the call.
func (m *Master) SetTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeout = d
	for _, p := range m.peers {
		p.mu.Lock()
		p.timeout = d
		p.mu.Unlock()
	}
}

// SetSupervisor replaces the peer lifecycle policy (retry budget, breaker
// threshold, backoff schedules). Zero fields fall back to defaults. Affects
// peers connected before and after the call.
func (m *Master) SetSupervisor(cfg SupervisorConfig) {
	cfg = cfg.normalized()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sup = cfg
	for _, p := range m.peers {
		p.stateMu.Lock()
		p.cfg = cfg
		p.stateMu.Unlock()
	}
}

// Connect dials a worker and adds it to the broadcast set. The initial dial
// is eager — a wrong address should fail loudly at setup — but from then on
// the supervisor owns the connection and redials it as needed.
func (m *Master) Connect(addr string) error {
	m.mu.Lock()
	cfg := m.sup
	timeout := m.timeout
	m.mu.Unlock()
	conn, err := transport.Dial(addr, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: master dial %s: %w", addr, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		conn.Close()
		return fmt.Errorf("cluster: master is closed")
	}
	p := &peerConn{
		addr:     addr,
		counters: m.counters,
		gauges:   m.gauges,
		hists:    m.hists,
		trc:      m.tracer,
		hedge:    m.hedge,
		budget:   m.budget,
		done:     m.done,
		wg:       &m.probeWG,
		conn:     conn,
		timeout:  timeout,
		cfg:      cfg,
		state:    PeerHealthy,
		muxOff:   m.muxOff,
	}
	m.peers = append(m.peers, p)
	return nil
}

// Peers returns the number of connected workers.
func (m *Master) Peers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.peers)
}

// Nodes returns the full ensemble size: connected peers plus the local
// expert when present — the denominator for degraded-mode quorum reporting.
func (m *Master) Nodes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.peers)
	if m.local.Load() != nil {
		n++
	}
	return n
}

// snapshotPeers copies the peer slice for lock-free fan-out.
func (m *Master) snapshotPeers() []*peerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*peerConn(nil), m.peers...)
}

// Infer performs one collaborative inference on a batch: broadcast, parallel
// local + remote prediction, gather, arg-min-entropy selection. It returns
// the combined probabilities and, per sample, the index of the winning node
// (0 = this node, 1.. = peers in connection order).
//
// Every peer round trip carries the supervisor's retry budget, so a single
// transient I/O error no longer fails the batch; a peer that exhausts its
// budget (or sits behind an open breaker) still fails the strict protocol —
// use InferBestEffort to route around it instead.
func (m *Master) Infer(x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	return m.InferContext(context.Background(), x)
}

// InferContext is Infer with deadline and cancellation plumbing: when ctx
// expires or is cancelled, in-flight peer waits abort promptly (the mux link
// stays up — a caller giving up is not a peer fault) and the error is the
// ctx error, so upstream queues stop burning round trips on requests nobody
// is waiting for. A span parent stamped into ctx with trace.NewContext
// parents this query's "infer" span tree — how the serve gateway links each
// coalesced batch into its own span.
func (m *Master) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	tr := m.tracer.get()
	root := tr.Start(trace.FromContext(ctx), "infer")
	start := time.Now()
	probs, winners, err := m.infer(ctx, x, tr, root.Ctx())
	root.EndErr(err)
	m.hists.Observe("infer.total", time.Since(start))
	return probs, winners, err
}

func (m *Master) infer(ctx context.Context, x *tensor.Tensor, tr *trace.Tracer, root trace.Context) (*tensor.Tensor, []int, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	peers := m.snapshotPeers()
	local := m.local.Load()

	batch := x.Shape[0]
	nodes := len(peers)
	localIdx := -1
	if local != nil {
		nodes++
		localIdx = 0
	}
	if nodes == 0 {
		return nil, nil, fmt.Errorf("cluster: master has neither local expert nor peers")
	}

	results := make([]PredictResult, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	payload := m.encodeInput(x, tr, root)

	// Steps 2-4: broadcast and gather concurrently; the local expert runs
	// in parallel with the network round trips.
	for i, p := range peers {
		slot := i
		if localIdx == 0 {
			slot = i + 1
		}
		wg.Add(1)
		go func(p *peerConn, slot int) {
			defer wg.Done()
			res, err := p.do(ctx, payload, root)
			results[slot], errs[slot] = res, err
		}(p, slot)
	}
	if localIdx == 0 {
		results[0] = m.localResult(local, x, tr, root)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}

	// Step 5: per-sample arg-min over entropies.
	gateStart := time.Now()
	combined := tensor.New(batch, m.classes)
	winners := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, bi := results[0].Entropy[b], 0
		for n := 1; n < nodes; n++ {
			if results[n].Entropy[b] < best {
				best, bi = results[n].Entropy[b], n
			}
		}
		winners[b] = bi
		copy(combined.RowSlice(b), results[bi].Probs.RowSlice(b))
	}
	m.recordGate(tr, root, gateStart)
	return combined, winners, nil
}

// encodeInput serializes the broadcast payload under a "serialize" span and
// appends the trace trailer when tracing is on. The same payload is shared
// by every peer round trip, so the trailer parents worker-side spans to the
// query's root span.
func (m *Master) encodeInput(x *tensor.Tensor, tr *trace.Tracer, root trace.Context) []byte {
	start := time.Now()
	payload := transport.EncodeTensor(x)
	d := time.Since(start)
	m.hists.Observe("infer.serialize", d)
	tr.Record(root, "serialize", "", "", start, d)
	return appendTraceContext(payload, root)
}

// localResult runs the given local-expert snapshot under a "local.compute"
// span. The snapshot is passed in (loaded once per query) so a concurrent
// SwapLocal cannot change the model mid-query.
func (m *Master) localResult(local *nn.Snapshot, x *tensor.Tensor, tr *trace.Tracer, root trace.Context) PredictResult {
	start := time.Now()
	probs, ent := local.PredictWithEntropy(x)
	d := time.Since(start)
	m.hists.Observe("local.compute", d)
	tr.Record(root, "local.compute", "", "", start, d)
	return PredictResult{Probs: probs, Entropy: ent.Data}
}

// recordGate closes out the arg-min-entropy selection stage.
func (m *Master) recordGate(tr *trace.Tracer, root trace.Context, start time.Time) {
	d := time.Since(start)
	m.hists.Observe("infer.gate", d)
	tr.Record(root, "gate", "", "", start, d)
}

// InferBestEffort is the degraded-mode variant of Infer for lossy edge
// deployments: nodes that fail (or exceed the master's timeout) are
// excluded from the arg-min instead of failing the whole inference, and
// peers behind an open circuit breaker are skipped outright — sick nodes
// cost nothing while they recover. It errors only when no node at all
// produced a result. The returned live count reports how many nodes
// participated.
func (m *Master) InferBestEffort(x *tensor.Tensor) (probs *tensor.Tensor, winners []int, live int, err error) {
	return m.InferBestEffortContext(context.Background(), x)
}

// InferBestEffortContext is InferBestEffort with the deadline/cancellation
// semantics of InferContext: an expired ctx aborts the remaining peer waits
// and fails the query with the ctx error (partial results are not returned —
// a caller that stopped waiting gets nothing, not a stale subset).
func (m *Master) InferBestEffortContext(ctx context.Context, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, live int, err error) {
	tr := m.tracer.get()
	root := tr.Start(trace.FromContext(ctx), "infer")
	start := time.Now()
	probs, winners, live, err = m.inferBestEffort(ctx, x, tr, root.Ctx())
	root.EndErr(err)
	m.hists.Observe("infer.total", time.Since(start))
	return probs, winners, live, err
}

func (m *Master) inferBestEffort(ctx context.Context, x *tensor.Tensor, tr *trace.Tracer, root trace.Context) (probs *tensor.Tensor, winners []int, live int, err error) {
	results, ok, _, err := m.gather(ctx, x, tr, root, 0, false)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, o := range ok {
		if o {
			live++
		}
	}
	if live == 0 {
		return nil, nil, 0, fmt.Errorf("cluster: no node answered")
	}
	probs, winners = m.combine(tr, root, x.Shape[0], results, ok)
	return probs, winners, live, nil
}

// InferQuorumContext is the graceful-degradation variant behind the serve
// gateway's degraded mode: like InferBestEffortContext it skips quarantined
// peers and tolerates node failures, but it additionally refuses to let a
// straggler drag the answer to the deadline. Once soft has elapsed since
// dispatch (soft > 0) — or ctx expires — with at least one node's result
// gathered, the partial ensemble's arg-min-entropy answer is returned
// instead of an error, and live < total tells the caller the answer is
// degraded. Stragglers are cancelled (a caller abort, not a peer fault).
// It errors only when ctx expires with nothing gathered at all.
func (m *Master) InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	tr := m.tracer.get()
	root := tr.Start(trace.FromContext(ctx), "infer")
	start := time.Now()
	probs, winners, live, total, err = m.inferQuorum(ctx, x, tr, root.Ctx(), soft)
	root.EndErr(err)
	m.hists.Observe("infer.total", time.Since(start))
	return probs, winners, live, total, err
}

func (m *Master) inferQuorum(ctx context.Context, x *tensor.Tensor, tr *trace.Tracer, root trace.Context, soft time.Duration) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	results, ok, total, err := m.gather(ctx, x, tr, root, soft, true)
	if err != nil {
		return nil, nil, 0, total, err
	}
	for _, o := range ok {
		if o {
			live++
		}
	}
	if live == 0 {
		return nil, nil, 0, total, fmt.Errorf("cluster: no node answered")
	}
	probs, winners = m.combine(tr, root, x.Shape[0], results, ok)
	return probs, winners, live, total, nil
}

// slotResult is one node's report back to the gather loop.
type slotResult struct {
	slot int
	res  PredictResult
	ok   bool
}

// gather fans one broadcast out to the local expert and every available
// peer, then collects results until every launched node reported. Two knobs
// relax the wait: soft > 0 returns the partial result set once the soft
// deadline passes with at least one result gathered ("infer.partial"), and
// partialOnExpiry does the same when ctx expires — otherwise expiry returns
// the ctx error, the strict best-effort contract. Early returns cancel the
// straggler round trips via a derived context, which the peer paths treat
// as a caller abort: no breaker accounting, the mux link stays up.
func (m *Master) gather(ctx context.Context, x *tensor.Tensor, tr *trace.Tracer, root trace.Context, soft time.Duration, partialOnExpiry bool) (results []PredictResult, ok []bool, total int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	peers := m.snapshotPeers()
	local := m.local.Load()
	nodes := len(peers)
	localIdx := -1
	if local != nil {
		nodes++
		localIdx = 0
	}
	if nodes == 0 {
		return nil, nil, 0, fmt.Errorf("cluster: master has neither local expert nor peers")
	}

	results = make([]PredictResult, nodes)
	ok = make([]bool, nodes)
	resc := make(chan slotResult, nodes)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	payload := m.encodeInput(x, tr, root)
	launched := 0
	for i, p := range peers {
		slot := i
		if localIdx == 0 {
			slot = i + 1
		}
		if !p.available() {
			m.counters.Counter("route.skipped_quarantined").Inc()
			// The quarantined peer still appears in the span tree, tagged
			// skipped, so a thinner-than-expected tree reads as "peer was
			// sick", not "peer never existed".
			tr.Record(root, "peer "+p.addr, "", trace.StatusSkipped, time.Now(), 0)
			continue
		}
		launched++
		go func(p *peerConn, slot int) {
			res, rerr := p.do(wctx, payload, root)
			resc <- slotResult{slot: slot, res: res, ok: rerr == nil}
		}(p, slot)
	}
	if localIdx == 0 {
		launched++
		go func() {
			// The local expert runs off the caller's goroutine here, so a
			// caller-side recover (e.g. the gateway's panic guard) cannot
			// catch a forward-pass panic — a width-mismatched input would
			// kill the whole process. Contain it to this slot: the local
			// expert just reports not-ok, like any other failed node.
			defer func() {
				if r := recover(); r != nil {
					m.counters.Counter("local.panics_recovered").Inc()
					resc <- slotResult{slot: 0}
				}
			}()
			resc <- slotResult{slot: 0, res: m.localResult(local, x, tr, root), ok: true}
		}()
	}

	var softC <-chan time.Time
	if soft > 0 {
		t := time.NewTimer(soft)
		defer t.Stop()
		softC = t.C
	}
	live, received := 0, 0
	for received < launched {
		select {
		case r := <-resc:
			received++
			if r.ok {
				results[r.slot], ok[r.slot] = r.res, true
				live++
			}
		case <-softC:
			softC = nil
			if live > 0 {
				m.counters.Counter("infer.partial").Inc()
				return results, ok, nodes, nil
			}
		case <-ctx.Done():
			if partialOnExpiry && live > 0 {
				m.counters.Counter("infer.partial").Inc()
				return results, ok, nodes, nil
			}
			return nil, nil, nodes, ctx.Err()
		}
	}
	if !partialOnExpiry {
		if err := ctx.Err(); err != nil {
			return nil, nil, nodes, err
		}
	}
	return results, ok, nodes, nil
}

// combine runs step 5 over whichever nodes answered: per-sample arg-min
// entropy across the ok slots.
func (m *Master) combine(tr *trace.Tracer, root trace.Context, batch int, results []PredictResult, ok []bool) (*tensor.Tensor, []int) {
	gateStart := time.Now()
	probs := tensor.New(batch, m.classes)
	winners := make([]int, batch)
	for b := 0; b < batch; b++ {
		bi := -1
		best := 0.0
		for n := range results {
			if !ok[n] {
				continue
			}
			if bi < 0 || results[n].Entropy[b] < best {
				best, bi = results[n].Entropy[b], n
			}
		}
		winners[b] = bi
		copy(probs.RowSlice(b), results[bi].Probs.RowSlice(b))
	}
	m.recordGate(tr, root, gateStart)
	return probs, winners
}

// Ping probes every peer within the configured per-peer timeout and reports
// every unreachable peer (joined into one error), not just the first — a
// health sweep, not a first-failure trip wire.
func (m *Master) Ping() error {
	peers := m.snapshotPeers()
	var errs []error
	for _, p := range peers {
		if err := p.ping(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Accuracy measures combined accuracy over a labelled set.
func (m *Master) Accuracy(x *tensor.Tensor, y []int) (float64, error) {
	probs, _, err := m.Infer(x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, label := range y {
		if probs.Row(i).ArgMax() == label {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Close drops all peer connections and stops background supervision.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	peers := m.peers
	m.peers = nil
	close(m.done)
	m.mu.Unlock()

	var firstErr error
	for _, p := range peers {
		p.markClosed()
		p.closeMux()
		p.mu.Lock()
		if p.conn != nil {
			if err := p.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			p.conn = nil
		}
		p.mu.Unlock()
	}
	m.probeWG.Wait()
	return firstErr
}
