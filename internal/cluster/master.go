package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// Master is the sensing node of Figure 1(d): it holds its own local expert,
// broadcasts each input to all worker peers (step 2), runs its expert in
// parallel with theirs (step 3), gathers results with uncertainties
// (step 4) and selects the least-uncertain prediction (step 5).
type Master struct {
	local   *nn.Network // this node's expert; may be nil (pure coordinator)
	classes int
	timeout time.Duration // per-round-trip deadline; 0 = none

	mu    sync.Mutex
	peers []*peerConn
}

type peerConn struct {
	addr    string
	conn    net.Conn
	timeout time.Duration
	mu      sync.Mutex // one in-flight request per peer connection
}

// NewMaster returns a master with an optional local expert. classes is the
// classifier width, needed to shape gathered results.
func NewMaster(local *nn.Network, classes int) *Master {
	return &Master{local: local, classes: classes}
}

// SetTimeout bounds every subsequent per-peer round trip. A worker that
// exceeds the deadline fails that inference instead of wedging the master —
// on a lossy edge network a bounded error beats an unbounded wait. Zero
// disables the deadline. Affects peers connected before and after the call.
func (m *Master) SetTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeout = d
	for _, p := range m.peers {
		p.mu.Lock()
		p.timeout = d
		p.mu.Unlock()
	}
}

// Connect dials a worker and adds it to the broadcast set.
func (m *Master) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: master dial %s: %w", addr, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = append(m.peers, &peerConn{addr: addr, conn: conn, timeout: m.timeout})
	return nil
}

// Peers returns the number of connected workers.
func (m *Master) Peers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.peers)
}

// Infer performs one collaborative inference on a batch: broadcast, parallel
// local + remote prediction, gather, arg-min-entropy selection. It returns
// the combined probabilities and, per sample, the index of the winning node
// (0 = this node, 1.. = peers in connection order).
func (m *Master) Infer(x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	m.mu.Lock()
	peers := append([]*peerConn(nil), m.peers...)
	m.mu.Unlock()

	batch := x.Shape[0]
	nodes := len(peers)
	localIdx := -1
	if m.local != nil {
		nodes++
		localIdx = 0
	}
	if nodes == 0 {
		return nil, nil, fmt.Errorf("cluster: master has neither local expert nor peers")
	}

	results := make([]PredictResult, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	payload := transport.EncodeTensor(x)

	// Steps 2-4: broadcast and gather concurrently; the local expert runs
	// in parallel with the network round trips.
	for i, p := range peers {
		slot := i
		if localIdx == 0 {
			slot = i + 1
		}
		wg.Add(1)
		go func(p *peerConn, slot int) {
			defer wg.Done()
			res, err := p.roundTrip(payload)
			results[slot], errs[slot] = res, err
		}(p, slot)
	}
	if localIdx == 0 {
		probs, ent := m.local.PredictWithEntropy(x)
		results[0] = PredictResult{Probs: probs, Entropy: ent.Data}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}

	// Step 5: per-sample arg-min over entropies.
	combined := tensor.New(batch, m.classes)
	winners := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, bi := results[0].Entropy[b], 0
		for n := 1; n < nodes; n++ {
			if results[n].Entropy[b] < best {
				best, bi = results[n].Entropy[b], n
			}
		}
		winners[b] = bi
		copy(combined.RowSlice(b), results[bi].Probs.RowSlice(b))
	}
	return combined, winners, nil
}

// InferBestEffort is the degraded-mode variant of Infer for lossy edge
// deployments: nodes that fail (or exceed the master's timeout) are
// excluded from the arg-min instead of failing the whole inference. It
// errors only when no node at all produced a result. The returned live
// count reports how many nodes participated.
func (m *Master) InferBestEffort(x *tensor.Tensor) (probs *tensor.Tensor, winners []int, live int, err error) {
	m.mu.Lock()
	peers := append([]*peerConn(nil), m.peers...)
	m.mu.Unlock()

	batch := x.Shape[0]
	nodes := len(peers)
	localIdx := -1
	if m.local != nil {
		nodes++
		localIdx = 0
	}
	if nodes == 0 {
		return nil, nil, 0, fmt.Errorf("cluster: master has neither local expert nor peers")
	}
	results := make([]PredictResult, nodes)
	ok := make([]bool, nodes)
	var wg sync.WaitGroup
	payload := transport.EncodeTensor(x)
	for i, p := range peers {
		slot := i
		if localIdx == 0 {
			slot = i + 1
		}
		wg.Add(1)
		go func(p *peerConn, slot int) {
			defer wg.Done()
			res, rerr := p.roundTrip(payload)
			if rerr == nil {
				results[slot], ok[slot] = res, true
			}
		}(p, slot)
	}
	if localIdx == 0 {
		pr, ent := m.local.PredictWithEntropy(x)
		results[0], ok[0] = PredictResult{Probs: pr, Entropy: ent.Data}, true
	}
	wg.Wait()

	for _, o := range ok {
		if o {
			live++
		}
	}
	if live == 0 {
		return nil, nil, 0, fmt.Errorf("cluster: no node answered")
	}
	probs = tensor.New(batch, m.classes)
	winners = make([]int, batch)
	for b := 0; b < batch; b++ {
		bi := -1
		best := 0.0
		for n := 0; n < nodes; n++ {
			if !ok[n] {
				continue
			}
			if bi < 0 || results[n].Entropy[b] < best {
				best, bi = results[n].Entropy[b], n
			}
		}
		winners[b] = bi
		copy(probs.RowSlice(b), results[bi].Probs.RowSlice(b))
	}
	return probs, winners, live, nil
}

// roundTrip sends one predict request and reads the result.
func (p *peerConn) roundTrip(payload []byte) (PredictResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.timeout > 0 {
		if err := p.conn.SetDeadline(time.Now().Add(p.timeout)); err != nil {
			return PredictResult{}, fmt.Errorf("set deadline: %w", err)
		}
		defer p.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	if err := transport.WriteFrame(p.conn, MsgPredict, payload); err != nil {
		return PredictResult{}, err
	}
	typ, resp, err := transport.ReadFrame(p.conn)
	if err != nil {
		return PredictResult{}, err
	}
	switch typ {
	case MsgResult:
		return DecodeResult(resp)
	case MsgError:
		return PredictResult{}, fmt.Errorf("worker error: %s", resp)
	default:
		return PredictResult{}, fmt.Errorf("unexpected frame type %d", typ)
	}
}

// Ping probes every peer, returning the first failure.
func (m *Master) Ping() error {
	m.mu.Lock()
	peers := append([]*peerConn(nil), m.peers...)
	m.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		err := transport.WriteFrame(p.conn, MsgPing, nil)
		if err == nil {
			var typ byte
			typ, _, err = transport.ReadFrame(p.conn)
			if err == nil && typ != MsgPong {
				err = fmt.Errorf("cluster: ping got frame type %d", typ)
			}
		}
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cluster: ping %s: %w", p.addr, err)
		}
	}
	return nil
}

// Accuracy measures combined accuracy over a labelled set.
func (m *Master) Accuracy(x *tensor.Tensor, y []int) (float64, error) {
	probs, _, err := m.Infer(x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, label := range y {
		if probs.Row(i).ArgMax() == label {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Close drops all peer connections.
func (m *Master) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for _, p := range m.peers {
		if err := p.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.peers = nil
	return firstErr
}
