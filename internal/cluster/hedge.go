package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/trace"
)

// Hedged broadcast: the tail-tolerance half of the SLO-defense layer. On an
// edge link a peer's p99 can sit an order of magnitude above its p50 — one
// slow round trip drags the whole gather to the timeout even though the
// peer is healthy. Instead of waiting the full per-peer timeout, a hedged
// round trip arms a timer at the peer's own live p95 (read from the
// "peer.<addr>.rtt" histogram the runtime already records) and, when it
// fires, launches a duplicate Predict down the same mux link. First reply
// wins; the loser is cancelled via its context, which the mux path treats
// as a caller abort — no breaker accounting, the link stays up, the late
// reply is dropped by id. The duplicate is only sent when the shared
// RetryBudget funds it, so hedging cannot become its own storm during a
// brownout (the exact moment everything looks slow).
//
// Counters: "hedge.fired" (duplicates launched), "hedge.won" (duplicate
// answered first), "hedge.wasted" (primary answered after the duplicate was
// already in flight).

// HedgeConfig tunes per-peer request hedging. The zero value disables
// hedging; enabling it with zero fields uses the defaults.
type HedgeConfig struct {
	// Enabled turns hedging on. Off by default: hedging spends bandwidth to
	// buy tail latency, a trade the serving layer opts into explicitly.
	Enabled bool
	// Quantile of the peer's live rtt histogram that arms the hedge timer.
	// Default 0.95.
	Quantile float64
	// MinSamples is how many rtt observations a peer needs before its
	// histogram is trusted to seed timers. Default 20.
	MinSamples int
	// MinDelay / MaxDelay clamp the timer: never hedge faster than MinDelay
	// (default 2ms — sub-RTT duplicates are pure waste) and never wait
	// longer than MaxDelay (default 250ms) even if the histogram says so.
	MinDelay time.Duration
	MaxDelay time.Duration
}

func (c HedgeConfig) normalized() HedgeConfig {
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.95
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 2 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 250 * time.Millisecond
	}
	return c
}

// hedgeRef shares one swappable hedge policy between a master and its
// peers, the tracerRef pattern: SetHedge affects peers connected before and
// after the call.
type hedgeRef struct {
	mu  sync.Mutex
	cfg HedgeConfig
}

func (r *hedgeRef) get() HedgeConfig {
	if r == nil {
		return HedgeConfig{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

func (r *hedgeRef) set(cfg HedgeConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg = cfg
}

// SetHedge installs the hedging policy (zero fields defaulted). Affects
// peers connected before and after the call.
func (m *Master) SetHedge(cfg HedgeConfig) { m.hedge.set(cfg.normalized()) }

// Hedge returns the installed hedging policy.
func (m *Master) Hedge() HedgeConfig { return m.hedge.get() }

// hedgeDelay resolves this peer's hedge timer from its live rtt histogram:
// the configured quantile clamped into [MinDelay, MaxDelay]. ok is false
// when hedging is off, the peer has too few samples, or the round trip is
// not on the mux path (a serial link carries one request at a time — a
// duplicate would just queue behind the original).
func (p *peerConn) hedgeDelay() (time.Duration, bool) {
	cfg := p.hedge.get()
	if !cfg.Enabled || p.hists == nil {
		return 0, false
	}
	h := p.hists.Histogram("peer." + p.addr + ".rtt")
	if h.Count() < int64(cfg.MinSamples) {
		return 0, false
	}
	d := h.Quantile(cfg.Quantile)
	if d < cfg.MinDelay {
		d = cfg.MinDelay
	}
	if d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	return d, true
}

// hedgeCounter bumps a master-wide hedge counter; nil-safe for hand-built
// test peers.
func (p *peerConn) hedgeCounter(name string) {
	if p.counters != nil {
		p.counters.Counter(name).Inc()
	}
}

// hedgeOutcome is one arm's result in the first-reply-wins race.
type hedgeOutcome struct {
	res   PredictResult
	err   error
	hedge bool // true for the duplicate arm
}

// muxHedged races a primary mux round trip against a delayed duplicate:
// launch the primary, arm the timer, and if the primary has not answered by
// then (and the retry budget funds it) launch a second identical request
// down the same pipelined link. The first success wins and cancels the
// other arm (a caller abort: no breaker accounting, the link survives). If
// the first arm to finish failed, the race keeps waiting on the other — a
// hedge doubles as an instant retry against a dying link.
func (p *peerConn) muxHedged(ctx context.Context, cfg SupervisorConfig, tr *trace.Tracer, peerCtx trace.Context, payload []byte, delay time.Duration) (PredictResult, error) {
	outc := make(chan hedgeOutcome, 2)
	run := func(actx context.Context, hedged bool) {
		adone, stop := joinDone(actx, p.done)
		defer stop()
		res, err := p.muxAttempts(actx, adone, cfg, tr, peerCtx, payload)
		outc <- hedgeOutcome{res: res, err: err, hedge: hedged}
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go run(pctx, false)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	inflight := 1
	fired := false
	var firstErr error
	for inflight > 0 {
		select {
		case o := <-outc:
			inflight--
			if o.err == nil {
				// Winner: cancel the twin; its abort is not a peer fault.
				pcancel()
				hcancel()
				if fired {
					if o.hedge {
						p.hedgeCounter("hedge.won")
					} else {
						p.hedgeCounter("hedge.wasted")
					}
				}
				return o.res, nil
			}
			if errors.Is(o.err, errMuxUnsupported) {
				// Pre-mux peer: hand straight back so do() falls to serial.
				pcancel()
				hcancel()
				return PredictResult{}, o.err
			}
			if firstErr == nil || !o.hedge {
				// Prefer reporting the primary arm's error.
				firstErr = o.err
			}
		case <-timerC:
			timerC = nil
			if !p.available() || !p.muxEligible() {
				continue
			}
			if !p.allowSpend("hedge") {
				continue // budget dry: no duplicate, the primary rides alone
			}
			fired = true
			inflight++
			p.hedgeCounter("hedge.fired")
			tr.Record(peerCtx, "hedge", "", "", time.Now(), 0)
			go run(hctx, true)
		}
	}
	return PredictResult{}, firstErr
}
