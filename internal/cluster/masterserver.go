package cluster

// MasterServer exposes a Master's combined ensemble inference over TCP, so
// gateways on other machines can route across a fleet of masters (the
// shard-and-replicate tier). It speaks the fabric protocol: pipelined
// MsgFabricPredict requests answered out of order under a bounded window
// (mirroring the worker's mux discipline), plus pings, election probes,
// membership announces, and versioned model pushes that hot-swap the
// master's local expert without restart.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/transport"
)

// masterFabricWindow bounds in-flight fabric requests per connection: the
// read loop blocks past it, so a flooding gateway gets TCP backpressure.
const masterFabricWindow = 64

// MasterServer serves one Master over the fabric protocol.
type MasterServer struct {
	master *Master
	id     int
	roster *Roster

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  bool
	addr    string
	version string
	onSwap  func(version string) // cutover hook; runs after a push is applied
}

// NewMasterServer wraps master for serving. id is the node's election
// identity (distinct per fabric node; higher wins).
func NewMasterServer(master *Master, id int) *MasterServer {
	return &MasterServer{
		master: master,
		id:     id,
		roster: NewRoster(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// SetOnSwap installs the cutover hook: it runs after an incoming model push
// has been applied (snapshot swapped, version recorded) and before the push
// is acked. A co-located gateway uses it to call SetModelVersion, which
// purges its response cache — the swap-before-invalidate ordering the
// versioned cache put relies on.
func (s *MasterServer) SetOnSwap(fn func(version string)) {
	s.mu.Lock()
	s.onSwap = fn
	s.mu.Unlock()
}

// SetModelVersion labels the currently served model (startup label).
func (s *MasterServer) SetModelVersion(v string) {
	s.mu.Lock()
	s.version = v
	s.mu.Unlock()
}

// ModelVersion returns the served model's version label.
func (s *MasterServer) ModelVersion() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Member returns this master's membership descriptor (valid after Listen).
func (s *MasterServer) Member() Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Member{Role: RoleMaster, Addr: s.addr, ID: s.id, Version: s.version}
}

// Roster exposes the server's membership view.
func (s *MasterServer) Roster() *Roster { return s.roster }

// Listen binds to addr and serves in the background, returning the bound
// address.
func (s *MasterServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: master server listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *MasterServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *MasterServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	defer func() {
		if r := recover(); r != nil {
			s.master.Counters().Counter("fabric.panics_recovered").Inc()
		}
	}()
	s.serveConn(conn)
}

func (s *MasterServer) serveConn(conn net.Conn) {
	cw := &connWriter{conn: conn}
	sem := make(chan struct{}, masterFabricWindow)
	for {
		typ, payload, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgFabricPredict:
			s.master.Counters().Counter("fabric.requests").Inc()
			id, body, err := splitMuxID(payload)
			if err != nil {
				_ = cw.write(MsgError, []byte(err.Error()))
				return
			}
			sem <- struct{}{}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						s.master.Counters().Counter("fabric.panics_recovered").Inc()
						conn.Close()
					}
				}()
				s.serveFabricPredict(cw, id, body)
			}()
		case MsgSplitPredict:
			s.master.Counters().Counter("fabric.requests.split").Inc()
			id, body, err := splitMuxID(payload)
			if err != nil {
				_ = cw.write(MsgError, []byte(err.Error()))
				return
			}
			sem <- struct{}{}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						s.master.Counters().Counter("fabric.panics_recovered").Inc()
						conn.Close()
					}
				}()
				s.serveSplitPredict(cw, id, body)
			}()
		case MsgPing:
			if err := cw.write(MsgPong, nil); err != nil {
				return
			}
		case MsgElection:
			if err := cw.write(MsgElectionOK, electionReply(s.id)); err != nil {
				return
			}
		case MsgAnnounce:
			reply, aerr := handleAnnounce(s.roster, s.Member(), payload)
			if aerr != nil {
				_ = cw.write(MsgError, []byte(aerr.Error()))
				return
			}
			if err := cw.write(MsgAnnounceOK, reply); err != nil {
				return
			}
		case MsgModelPush:
			version, perr := s.applyModelPush(payload)
			if perr != nil {
				if err := cw.write(MsgError, []byte(perr.Error())); err != nil {
					return
				}
				continue
			}
			if err := cw.write(MsgModelPushOK, []byte(version)); err != nil {
				return
			}
		default:
			_ = cw.write(MsgError, []byte(fmt.Sprintf("unknown frame type %d", typ)))
			return
		}
	}
}

// serveFabricPredict answers one pipelined fabric request. Failures are
// per-request MsgErrorMux frames; the connection and the pipeline survive.
func (s *MasterServer) serveFabricPredict(cw *connWriter, id uint32, body []byte) {
	mode, softNs, budgetNs, x, err := decodeFabricRequest(body)
	if err != nil {
		_ = cw.write(MsgErrorMux, appendMuxID(id, []byte(err.Error())))
		return
	}
	ctx := context.Background()
	if budgetNs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(budgetNs))
		defer cancel()
	}
	probs, winners, live, total, err := s.dispatch(ctx, mode, softNs, x)
	if err != nil {
		_ = cw.write(MsgErrorMux, appendMuxID(id, []byte(err.Error())))
		return
	}
	_ = cw.write(MsgFabricResult, appendMuxID(id, encodeFabricResult(probs, winners, live, total)))
}

// serveSplitPredict answers one partial-offload tail against the master's
// local expert snapshot, sharing the worker's serving body (version check,
// recovered range execution, full-precision result).
func (s *MasterServer) serveSplitPredict(cw *connWriter, id uint32, body []byte) {
	snap := s.master.LocalSnapshot()
	if snap == nil {
		_ = cw.write(MsgErrorMux, appendMuxID(id, []byte("master has no local expert for split serving")))
		return
	}
	result, errText := runSplitBody(snap, s.ModelVersion(), body, s.master.tracer, s.master.Histograms())
	if errText != "" {
		_ = cw.write(MsgErrorMux, appendMuxID(id, []byte(errText)))
		return
	}
	_ = cw.write(MsgSplitResult, appendMuxID(id, result))
}

func (s *MasterServer) dispatch(ctx context.Context, mode byte, softNs uint64, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	if mode == fabricModeQuorum {
		return s.master.InferQuorumContext(ctx, x, time.Duration(softNs))
	}
	probs, winners, err = s.master.InferContext(ctx, x)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	n := s.master.Nodes()
	return probs, winners, n, n, nil
}

// applyModelPush swaps the master's local expert (or just re-labels on a
// version-only push) and runs the cutover hook before acking.
func (s *MasterServer) applyModelPush(payload []byte) (version string, err error) {
	version, snap, err := DecodeModelPush(payload)
	if err != nil {
		return "", err
	}
	if snap != nil {
		s.master.SwapLocal(snap)
	}
	s.mu.Lock()
	s.version = version
	hook := s.onSwap
	s.mu.Unlock()
	if hook != nil {
		hook(version)
	}
	return version, nil
}

// Announce performs one client-side membership exchange against addr using
// this server's own descriptor, merging the reply into its roster.
func (s *MasterServer) Announce(addr string, timeout time.Duration) (Member, error) {
	return Announce(addr, s.Member(), s.roster, timeout)
}

// SwapLocalNetwork compiles net and hot-swaps the master's local expert
// under the given version label, running the same cutover hook as a wire
// push — the co-located (-swap-watch) reload path in teamnet-serve.
func (s *MasterServer) SwapLocalNetwork(net *nn.Network, version string) error {
	snap, err := nn.NewSnapshot(net)
	if err != nil {
		return err
	}
	s.master.SwapLocal(snap)
	s.mu.Lock()
	s.version = version
	hook := s.onSwap
	s.mu.Unlock()
	if hook != nil {
		hook(version)
	}
	return nil
}

// Close stops serving and closes open connections.
func (s *MasterServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
