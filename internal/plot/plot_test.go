package plot

import (
	"strings"
	"testing"
)

func assertSVG(t *testing.T, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatalf("not an svg: %q", svg[:40])
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("svg not closed")
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("nested svg")
	}
}

func TestLines(t *testing.T) {
	svg := Lines("conv", "iter", "share",
		[]float64{0, 1, 2},
		[]string{"e1", "e2"},
		[][]float64{{0.3, 0.5, 0.5}, {0.7, 0.5, 0.5}})
	assertSVG(t, svg)
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines:\n%s", svg)
	}
	if !strings.Contains(svg, "e1") || !strings.Contains(svg, "e2") {
		t.Fatal("legend labels missing")
	}
	if !strings.Contains(svg, "iter") || !strings.Contains(svg, "share") {
		t.Fatal("axis labels missing")
	}
}

func TestBars(t *testing.T) {
	svg := Bars("latency", "ms",
		[]string{"Baseline", "TeamNet x2"},
		[]string{"Inference"},
		[][]float64{{3.4, 2.0}})
	assertSVG(t, svg)
	if strings.Count(svg, "<rect") < 4 { // frame + background + 2 bars
		t.Fatal("bars missing")
	}
	if !strings.Contains(svg, "Baseline") {
		t.Fatal("group labels missing")
	}
}

func TestHeatmap(t *testing.T) {
	svg := Heatmap("spec",
		[]string{"expert1", "expert2"},
		[]string{"cat", "truck"},
		[][]float64{{0.9, 0.1}, {0.1, 0.9}})
	assertSVG(t, svg)
	if strings.Count(svg, "<rect") < 5 { // background + 4 cells
		t.Fatal("cells missing")
	}
	if !strings.Contains(svg, "0.90") {
		t.Fatal("cell values missing")
	}
}

func TestEscaping(t *testing.T) {
	svg := Lines("a < b & c", "x", "y", []float64{0, 1}, []string{"<s>"}, [][]float64{{0, 1}})
	if strings.Contains(svg, "a < b") || strings.Contains(svg, "<s>") {
		t.Fatal("markup not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c") {
		t.Fatal("escaped title missing")
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Constant series (zero range) and single points must not divide by
	// zero or emit NaN coordinates.
	svg := Lines("flat", "x", "y", []float64{5}, []string{"a"}, [][]float64{{2}})
	assertSVG(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN coordinates in svg")
	}
	svg = Heatmap("one", []string{"r"}, []string{"c"}, [][]float64{{0.5}})
	assertSVG(t, svg)
	svg = Bars("zero", "v", []string{"g"}, []string{"s"}, [][]float64{{0}})
	assertSVG(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN in zero bars")
	}
}

func TestHeatColorRamp(t *testing.T) {
	if heatColor(0) == heatColor(1) {
		t.Fatal("flat color ramp")
	}
	if textOn(0.9) != "white" || textOn(0.1) == "white" {
		t.Fatal("text contrast rule broken")
	}
}

func TestRangeOf(t *testing.T) {
	lo, hi := rangeOf(nil)
	if lo != 0 || hi != 1 {
		t.Fatal("empty range default wrong")
	}
	lo, hi = rangeOf([]float64{3, 3})
	if lo != 3 || hi <= lo {
		t.Fatal("constant range not widened")
	}
}
