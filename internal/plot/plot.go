// Package plot renders the benchmark harness's results as standalone SVG
// files using only the standard library — line charts for the convergence
// figures (6, 8), grouped bar charts for the latency/accuracy comparisons
// (5, 7, tables), and heat maps for the specialization figure (9).
//
// The output is deliberately simple, deterministic markup: fixed canvas,
// no scripting, valid standalone SVG 1.1 — diffable in tests and viewable
// anywhere.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas geometry shared by all chart kinds.
const (
	width   = 720
	height  = 420
	marginL = 70
	marginR = 160
	marginT = 40
	marginB = 50
)

// seriesColors cycles through distinguishable hues.
var seriesColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

func plotW() float64 { return float64(width - marginL - marginR) }
func plotH() float64 { return float64(height - marginT - marginB) }

// Lines renders one or more named curves over a shared x axis.
func Lines(title, xLabel, yLabel string, x []float64, names []string, ys [][]float64) string {
	var b strings.Builder
	header(&b, title)
	xMin, xMax := rangeOf(x)
	var all []float64
	for _, y := range ys {
		all = append(all, y...)
	}
	yMin, yMax := rangeOf(all)
	if yMin > 0 {
		yMin = 0 // proportions and latencies read best from zero
	}
	axes(&b, xLabel, yLabel, xMin, xMax, yMin, yMax)
	sx := func(v float64) float64 { return marginL + (v-xMin)/(xMax-xMin+1e-12)*plotW() }
	sy := func(v float64) float64 { return marginT + plotH() - (v-yMin)/(yMax-yMin+1e-12)*plotH() }
	for si, y := range ys {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		for i := range x {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(x[i]), sy(y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		legendEntry(&b, si, names[si], color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Bars renders grouped bars: one group per label, one bar per series.
func Bars(title, yLabel string, groups []string, names []string, values [][]float64) string {
	var b strings.Builder
	header(&b, title)
	var all []float64
	for _, v := range values {
		all = append(all, v...)
	}
	_, yMax := rangeOf(all)
	axes(&b, "", yLabel, 0, 1, 0, yMax)
	nGroups, nSeries := len(groups), len(names)
	groupW := plotW() / float64(nGroups)
	barW := groupW * 0.8 / float64(nSeries)
	for g := range groups {
		gx := marginL + float64(g)*groupW
		for s := 0; s < nSeries; s++ {
			v := values[s][g]
			h := v / (yMax + 1e-12) * plotH()
			x := gx + groupW*0.1 + float64(s)*barW
			y := marginT + plotH() - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, h, seriesColors[s%len(seriesColors)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, height-marginB+18, escape(groups[g]))
	}
	for s, name := range names {
		legendEntry(&b, s, name, seriesColors[s%len(seriesColors)])
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Heatmap renders a rows×cols matrix of values in [0, 1] with labels.
func Heatmap(title string, rowNames, colNames []string, values [][]float64) string {
	var b strings.Builder
	header(&b, title)
	nR, nC := len(rowNames), len(colNames)
	cellW := plotW() / float64(nC)
	cellH := plotH() / float64(nR)
	for r := 0; r < nR; r++ {
		for c := 0; c < nC; c++ {
			v := clamp01(values[r][c])
			x := marginL + float64(c)*cellW
			y := marginT + float64(r)*cellH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, cellW, cellH, heatColor(v))
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="%s">%.2f</text>`+"\n",
				x+cellW/2, y+cellH/2+3, textOn(v), v)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, marginT+float64(r)*cellH+cellH/2+3, escape(rowNames[r]))
	}
	for c := 0; c < nC; c++ {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			marginL+float64(c)*cellW+cellW/2, height-marginB+16, escape(colNames[c]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, escape(title))
}

// axes draws the frame, y ticks and labels.
func axes(b *strings.Builder, xLabel, yLabel string, xMin, xMax, yMin, yMax float64) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW(), plotH())
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		v := yMin + (yMax-yMin)*frac
		y := marginT + plotH() - frac*plotH()
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW(), y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+3, trimNum(v))
	}
	if xLabel != "" {
		for i := 0; i <= 4; i++ {
			frac := float64(i) / 4
			v := xMin + (xMax-xMin)*frac
			x := marginL + frac*plotW()
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x, height-marginB+16, trimNum(v))
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW()/2, height-10, escape(xLabel))
	}
	fmt.Fprintf(b, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH()/2, marginT+plotH()/2, escape(yLabel))
}

func legendEntry(b *strings.Builder, idx int, name, color string) {
	x := width - marginR + 12
	y := marginT + 16 + idx*18
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y-10, color)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", x+16, y, escape(name))
}

// heatColor maps [0,1] to a white→blue ramp.
func heatColor(v float64) string {
	r := int(255 - 200*v)
	g := int(255 - 150*v)
	return fmt.Sprintf("#%02x%02xff", r, g)
}

func textOn(v float64) string {
	if v > 0.6 {
		return "white"
	}
	return "#333"
}

func rangeOf(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 1
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func trimNum(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}
