package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
)

// Router tests: least-loaded selection, failover-with-cooldown, and the
// quorum fallback for targets without degraded support.

// routeBackend counts calls and can be set to fail or stall.
type routeBackend struct {
	mu    sync.Mutex
	calls int
	fail  error
	delay time.Duration
	echo  echoBackend
}

func (b *routeBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	b.mu.Lock()
	b.calls++
	fail := b.fail
	delay := b.delay
	b.mu.Unlock()
	if fail != nil {
		return nil, nil, fail
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return b.echo.InferContext(ctx, x)
}

func (b *routeBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

func (b *routeBackend) setFail(err error) {
	b.mu.Lock()
	b.fail = err
	b.mu.Unlock()
}

func TestRouterSpreadsLoad(t *testing.T) {
	// Least-loaded routing spreads CONCURRENT traffic: the in-flight term
	// pushes overlapping requests onto the idler target. (Sequential
	// traffic sticking to the single fastest idle target is correct.)
	r := NewRouter(0)
	a, b := &routeBackend{delay: 2 * time.Millisecond}, &routeBackend{delay: 2 * time.Millisecond}
	r.Upsert("a", a)
	r.Upsert("b", b)

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.InferContext(context.Background(), row(float64(i), 0))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if a.count() == 0 || b.count() == 0 {
		t.Fatalf("load not spread: a=%d b=%d", a.count(), b.count())
	}
	if got := r.Counters().Counter("serve.route.dispatched").Value(); got != n {
		t.Fatalf("dispatched = %d, want %d", got, n)
	}
}

func TestRouterFailoverAndCooldown(t *testing.T) {
	r := NewRouter(time.Hour) // cooldown long enough to pin the target out
	bad, good := &routeBackend{}, &routeBackend{}
	bad.setFail(errors.New("master down"))
	r.Upsert("bad", bad)
	r.Upsert("good", good)

	// Drive until the bad target has been tried: it errors, cools down,
	// and the request fails over to the good one within the same call.
	for i := 0; i < 10; i++ {
		if _, _, err := r.InferContext(context.Background(), row(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if bad.count() == 0 {
		t.Fatal("bad target was never tried")
	}
	if got := r.Counters().Counter("serve.route.failover").Value(); got == 0 {
		t.Fatal("no failover counted")
	}
	// Once cooling, the bad target stops receiving traffic entirely.
	tried := bad.count()
	for i := 0; i < 10; i++ {
		if _, _, err := r.InferContext(context.Background(), row(float64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if bad.count() != tried {
		t.Fatalf("cooling target still tried: %d → %d", tried, bad.count())
	}

	// With every target failing, the error propagates (after both tried).
	good.setFail(errors.New("also down"))
	if _, _, err := r.InferContext(context.Background(), row(1, 0)); err == nil {
		t.Fatal("all-targets-down dispatch succeeded")
	}
}

func TestRouterNoTargets(t *testing.T) {
	r := NewRouter(0)
	if _, _, err := r.InferContext(context.Background(), row(1, 0)); !errors.Is(err, errNoTargets) {
		t.Fatalf("err = %v, want errNoTargets", err)
	}
	r.Upsert("a", &routeBackend{})
	r.Remove("a")
	if _, _, err := r.InferContext(context.Background(), row(1, 0)); !errors.Is(err, errNoTargets) {
		t.Fatalf("err after remove = %v, want errNoTargets", err)
	}
}

func TestRouterQuorumFallback(t *testing.T) {
	r := NewRouter(0)
	// routeBackend implements only Backend: the quorum path must fall back
	// to strict and report a full (1/1) quorum.
	r.Upsert("plain", &routeBackend{})
	_, _, live, total, err := r.InferQuorumContext(context.Background(), row(2, 1), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if live != 1 || total != 1 {
		t.Fatalf("fallback quorum %d/%d, want 1/1", live, total)
	}

	// A degraded-capable target reports its own quorum through the router.
	r2 := NewRouter(0)
	r2.Upsert("degraded", &degradedFlipBackend{})
	_, _, live, total, err = r2.InferQuorumContext(context.Background(), row(2, 1), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !(live < total) {
		t.Fatalf("degraded target reported %d/%d through the router", live, total)
	}
}

func TestRouterBehindGateway(t *testing.T) {
	// The full stack: Gateway → Router → N backends, with cache+coalesce on.
	r := NewRouter(0)
	a, b := &routeBackend{}, &routeBackend{}
	r.Upsert("a", a)
	r.Upsert("b", b)
	gw := New(r, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 32, Coalesce: true})
	defer gw.Close()
	gw.SetModelVersion("v1")

	for i := 0; i < 8; i++ {
		res, err := gw.Predict(context.Background(), row(float64(i%3), i%3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Winners[0] != i%3 {
			t.Fatalf("wrong winner via router: %d", res.Winners[0])
		}
	}
	if a.count()+b.count() == 0 {
		t.Fatal("no backend traffic")
	}
	if a.count()+b.count() >= 8 {
		t.Fatal("cache did nothing behind the router")
	}
}
