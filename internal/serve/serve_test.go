package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/admin"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
)

// echoBackend answers instantly: probs[r][0] echoes x[r][0] (so a caller
// can prove it got its own rows back), winner[r] = r-th row's int(x[r][1]).
type echoBackend struct {
	mu      sync.Mutex
	batches []int // row count of every batch seen, in dispatch order
	marks   []float64
}

func (b *echoBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rows := x.Shape[0]
	probs := tensor.New(rows, 4)
	winners := make([]int, rows)
	for r := 0; r < rows; r++ {
		// A near-one-hot distribution keyed on the input so entropy is
		// finite and each row is distinguishable.
		mark := x.RowSlice(r)[0]
		for c := 0; c < 4; c++ {
			probs.RowSlice(r)[c] = 0.01
		}
		probs.RowSlice(r)[0] = 0.97
		probs.RowSlice(r)[1] = 0.01 + mark*1e-9 // carries the mark without breaking normalization much
		winners[r] = int(x.RowSlice(r)[1])
	}
	b.mu.Lock()
	b.batches = append(b.batches, rows)
	for r := 0; r < rows; r++ {
		b.marks = append(b.marks, x.RowSlice(r)[0])
	}
	b.mu.Unlock()
	return probs, winners, nil
}

// gatedBackend blocks every call until released (or the ctx dies); entered
// (when non-nil, buffered) signals each call the moment it starts, so tests
// can wedge the pipeline deterministically.
type gatedBackend struct {
	gate    chan struct{} // receive one token per call
	entered chan struct{}
	echo    echoBackend
}

func (b *gatedBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	select {
	case <-b.gate:
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	return b.echo.InferContext(ctx, x)
}

func row(mark float64, winner int) *tensor.Tensor {
	x := tensor.New(1, 3)
	x.RowSlice(0)[0] = mark
	x.RowSlice(0)[1] = float64(winner)
	return x
}

// TestConcurrentScatterOwnership is the core correctness property under
// -race: N goroutines each submit one distinguishable row concurrently, the
// batcher coalesces them arbitrarily, and every caller must get exactly its
// own row's results back.
func TestConcurrentScatterOwnership(t *testing.T) {
	be := &echoBackend{}
	gw := New(be, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 3})
	defer gw.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mark := float64(i + 1)
			res, err := gw.Predict(context.Background(), row(mark, i%7))
			if err != nil {
				errs[i] = err
				return
			}
			if res.Probs.Shape[0] != 1 || len(res.Winners) != 1 || len(res.Entropy) != 1 {
				errs[i] = fmt.Errorf("row %d: got %d probs rows, %d winners, %d entropies", i, res.Probs.Shape[0], len(res.Winners), len(res.Entropy))
				return
			}
			gotMark := (res.Probs.RowSlice(0)[1] - 0.01) / 1e-9
			if math.Abs(gotMark-mark) > 0.5 {
				errs[i] = fmt.Errorf("row %d: scattered mark %.1f, want %.1f — got another caller's row", i, gotMark, mark)
				return
			}
			if res.Winners[0] != i%7 {
				errs[i] = fmt.Errorf("row %d: winner %d, want %d", i, res.Winners[0], i%7)
				return
			}
			if res.Entropy[0] <= 0 || res.Entropy[0] > math.Log(4)+1e-9 {
				errs[i] = fmt.Errorf("row %d: entropy %v outside (0, ln 4]", i, res.Entropy[0])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	// The batcher must actually have coalesced: with 64 rows racing through
	// batches of ≤8, there must be fewer batches than rows.
	be.mu.Lock()
	batches, rows := len(be.batches), 0
	for _, b := range be.batches {
		rows += b
		if b > 8 {
			t.Errorf("batch of %d rows exceeds MaxBatch 8", b)
		}
	}
	be.mu.Unlock()
	if rows != n {
		t.Fatalf("backend saw %d rows, want %d", rows, n)
	}
	if batches == n {
		t.Log("warning: no coalescing happened (every batch had 1 row) — timing-dependent, not failing")
	}
	if got := gw.Counters().Counter("serve.requests").Value(); got != n {
		t.Fatalf("serve.requests = %d, want %d", got, n)
	}
	if got := gw.Counters().Counter("serve.batched_rows").Value(); got != n {
		t.Fatalf("serve.batched_rows = %d, want %d", got, n)
	}
	if got := gw.ValueHistograms().Histogram("serve.batch_size").Count(); got != int64(batches) {
		t.Fatalf("serve.batch_size observations = %d, want %d", got, batches)
	}
}

// TestMultiRowRequestScatter submits requests of differing row counts and
// checks each gets its own contiguous block back.
func TestMultiRowRequestScatter(t *testing.T) {
	be := &echoBackend{}
	gw := New(be, Config{MaxBatch: 16, MaxLinger: 2 * time.Millisecond, Workers: 2})
	defer gw.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows := 1 + i%3
			x := tensor.New(rows, 3)
			for r := 0; r < rows; r++ {
				x.RowSlice(r)[0] = float64(i*10 + r)
				x.RowSlice(r)[1] = float64((i + r) % 5)
			}
			res, err := gw.Predict(context.Background(), x)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Probs.Shape[0] != rows {
				errs[i] = fmt.Errorf("req %d: %d rows back, want %d", i, res.Probs.Shape[0], rows)
				return
			}
			for r := 0; r < rows; r++ {
				want := float64(i*10 + r)
				got := (res.Probs.RowSlice(r)[1] - 0.01) / 1e-9
				if math.Abs(got-want) > 0.5 {
					errs[i] = fmt.Errorf("req %d row %d: mark %.1f, want %.1f", i, r, got, want)
					return
				}
				if res.Winners[r] != (i+r)%5 {
					errs[i] = fmt.Errorf("req %d row %d: winner %d, want %d", i, r, res.Winners[r], (i+r)%5)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestDeadlineExpiry: a request whose deadline passes while the backend is
// stuck must return ctx's error and count as a timeout; a request already
// expired when the batcher dequeues it is shed without a dispatch.
func TestDeadlineExpiry(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{})}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1, QueueSize: 8})
	defer gw.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := gw.Predict(ctx, row(1, 0))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The expiry lands either as a caller-side timeout (Predict's ctx arm
	// won the race) or as a batch error (the backend returned ctx.Err()
	// first and the scatter arm won); both must be counted somewhere.
	counted := gw.Counters().Counter("serve.timeouts").Value() +
		gw.Counters().Counter("serve.batch_errors").Value()
	if counted < 1 {
		t.Fatalf("deadline expiry left no trace in serve.timeouts or serve.batch_errors")
	}

	// Unstick the worker (the timed-out batch is still dispatched — its ctx
	// kills it inside the backend) so the next phase has a live pipeline.
	close(be.gate)

	// Pre-expired context: the batcher sheds it at dequeue; the backend
	// never sees its row.
	before := len(be.echo.snapshotBatches())
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = gw.Predict(expired, row(2, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want Canceled", err)
	}
	total := gw.Counters().Counter("serve.shed.expired").Value() +
		gw.Counters().Counter("serve.timeouts").Value() +
		gw.Counters().Counter("serve.batch_errors").Value()
	if total < 2 {
		t.Fatalf("expired requests not counted (shed.expired + timeouts + batch_errors = %d)", total)
	}
	time.Sleep(10 * time.Millisecond)
	for _, b := range be.echo.snapshotBatches()[before:] {
		_ = b // rows from the cancelled request may only appear if it won the race into a batch pre-cancel; with a pre-cancelled ctx it cannot
	}
}

func (b *echoBackend) snapshotBatches() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.batches...)
}

// TestQueueFullShed: with the worker wedged and the lane full, admission
// must reject instantly with ErrQueueFull and count the shed.
func TestQueueFullShed(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}), entered: make(chan struct{}, 8)}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1, QueueSize: 2})
	defer gw.Close()

	// Wedge the pipeline step by step so admission cannot race the batcher:
	// the worker blocks in the backend, the batcher blocks handing over the
	// next batch, then the lane fills to QueueSize.
	var wg sync.WaitGroup
	results := make(chan error, 16)
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := gw.Predict(ctx, row(float64(i), 0))
			results <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	waitDepth := func(want int64, what string) {
		t.Helper()
		for gw.Gauges().Gauge("serve.queue_depth").Value() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s (queue depth stuck at %d, want %d)", what, gw.Gauges().Gauge("serve.queue_depth").Value(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	submit(0)
	<-be.entered // request 0 is inside the backend; the worker is wedged
	submit(1)
	// Request 1 admitted (requests = 2) and dequeued (depth back to 0) means
	// the batcher holds it, blocked on dispatch — the pipeline is wedged.
	for gw.Counters().Counter("serve.requests").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("request 1 never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	waitDepth(0, "batcher never picked up request 1")
	submit(2)
	submit(3)
	waitDepth(2, "queue never filled")
	start := time.Now()
	_, err := gw.Predict(context.Background(), row(99, 0))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("shed took %v; admission must reject instantly", time.Since(start))
	}
	if got := gw.Counters().Counter("serve.shed.queue_full").Value(); got < 1 {
		t.Fatalf("serve.shed.queue_full = %d, want >= 1", got)
	}
	close(be.gate) // let the wedged requests finish
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("wedged request finished with %v", err)
		}
	}
}

// TestPriorityLane: with the pipeline wedged and both lanes populated, the
// high-priority request must reach the backend before the earlier-queued
// normal one.
func TestPriorityLane(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 16)}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1, QueueSize: 8})
	defer gw.Close()

	// Wedge: request A occupies the worker; request B sits in the batcher
	// blocked on dispatch. Everything queued after that is still in lanes.
	var wg sync.WaitGroup
	submit := func(mark float64, p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gw.PredictOpts(context.Background(), row(mark, 0), Options{Priority: p})
		}()
	}
	submit(1, PriorityNormal) // → worker
	submit(2, PriorityNormal) // → batcher, blocked on dispatch
	// Wait until both are out of the lanes.
	deadline := time.Now().Add(2 * time.Second)
	for gw.Counters().Counter("serve.requests").Value() < 2 || gw.Gauges().Gauge("serve.queue_depth").Value() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never wedged")
		}
		time.Sleep(time.Millisecond)
	}
	submit(3, PriorityNormal)
	submit(4, PriorityNormal)
	// Ensure the normal requests are queued before the high one arrives.
	for gw.Gauges().Gauge("serve.queue_depth").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("normal lane never filled")
		}
		time.Sleep(time.Millisecond)
	}
	submit(9, PriorityHigh)
	for gw.Gauges().Gauge("serve.queue_depth").Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("high lane never filled")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		be.gate <- struct{}{}
	}
	wg.Wait()

	be.echo.mu.Lock()
	marks := append([]float64(nil), be.echo.marks...)
	be.echo.mu.Unlock()
	if len(marks) != 5 {
		t.Fatalf("backend saw %d rows, want 5 (marks %v)", len(marks), marks)
	}
	// Marks 1 and 2 were already past the lanes; among the remaining three,
	// the high-priority 9 must come first.
	if marks[2] != 9 {
		t.Fatalf("dispatch order %v: high-priority mark 9 should be third (first out of the lanes after the wedge)", marks)
	}
}

// TestBatchDeadlinePropagation: the batch context carries the latest member
// deadline when all members have one, and none otherwise.
func TestBatchDeadlinePropagation(t *testing.T) {
	type seen struct {
		dl time.Time
		ok bool
	}
	seenc := make(chan seen, 4)
	be := backendFunc(func(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
		dl, ok := ctx.Deadline()
		seenc <- seen{dl, ok}
		probs := tensor.New(x.Shape[0], 2)
		for r := 0; r < x.Shape[0]; r++ {
			probs.RowSlice(r)[0], probs.RowSlice(r)[1] = 0.5, 0.5
		}
		return probs, make([]int, x.Shape[0]), nil
	})
	gw := New(be, Config{MaxBatch: 4, MaxLinger: 20 * time.Millisecond, Workers: 1})
	defer gw.Close()

	// Two members with deadlines ~100ms and ~500ms out → batch deadline is
	// the later one.
	var wg sync.WaitGroup
	for _, d := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond} {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			gw.Predict(ctx, row(1, 0))
		}(d)
	}
	wg.Wait()
	s := <-seenc
	if !s.ok {
		t.Fatal("batch of all-deadlined members dispatched without a deadline")
	}
	if until := time.Until(s.dl); until < 150*time.Millisecond {
		t.Fatalf("batch deadline %v out; want the LATEST member deadline (~500ms)", until)
	}

	// One member without a deadline unbounds the batch.
	if _, err := gw.Predict(context.Background(), row(2, 0)); err != nil {
		t.Fatal(err)
	}
	s = <-seenc
	if s.ok {
		t.Fatalf("batch with an unbounded member still carried deadline %v", s.dl)
	}
}

type backendFunc func(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error)

func (f backendFunc) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	return f(ctx, x)
}

// TestBackendErrorScatters: a failed batch fails every member with the
// backend's error and counts one batch error.
func TestBackendErrorScatters(t *testing.T) {
	boom := errors.New("boom")
	be := backendFunc(func(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
		return nil, nil, boom
	})
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Workers: 1})
	defer gw.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gw.Predict(context.Background(), row(1, 0)); !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
	if got := gw.Counters().Counter("serve.batch_errors").Value(); got < 1 {
		t.Fatalf("serve.batch_errors = %d, want >= 1", got)
	}
}

// TestBackendPanicScatters: a backend that panics (a wrong-width batch
// blows up deep in the math layers) must not kill the worker — the panic
// becomes that batch's error, it is counted, and the gateway keeps
// serving subsequent batches.
func TestBackendPanicScatters(t *testing.T) {
	var calls atomic.Int64
	be := backendFunc(func(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
		if calls.Add(1) == 1 {
			panic("matmul inner dimensions differ")
		}
		probs := tensor.New(x.Shape[0], 2)
		return probs, make([]int, x.Shape[0]), nil
	})
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1})
	defer gw.Close()
	if _, err := gw.Predict(context.Background(), row(1, 0)); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want inference panic error", err)
	}
	if got := gw.Counters().Counter("serve.panics").Value(); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
	if got := gw.Counters().Counter("serve.batch_errors").Value(); got != 1 {
		t.Fatalf("serve.batch_errors = %d, want 1", got)
	}
	// The worker survived: the next request goes through normally.
	if _, err := gw.Predict(context.Background(), row(2, 0)); err != nil {
		t.Fatalf("request after panic failed: %v", err)
	}
}

// TestInputValidation rejects malformed tensors and oversized requests.
func TestInputValidation(t *testing.T) {
	gw := New(&echoBackend{}, Config{MaxBatch: 4})
	defer gw.Close()
	if _, err := gw.Predict(context.Background(), nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := gw.Predict(context.Background(), tensor.New(5, 3)); !errors.Is(err, ErrTooManyRows) {
		t.Fatalf("oversized request: err = %v, want ErrTooManyRows", err)
	}
}

// TestCloseFailsPending: Close fails queued requests with ErrClosed and
// Predict after Close rejects.
func TestCloseFailsPending(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{})}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1, QueueSize: 8})
	var wg sync.WaitGroup
	errsc := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Short deadline: Close lets the in-flight batch finish, and that
			// batch is wedged in the gated backend until its ctx expires.
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_, err := gw.Predict(ctx, row(1, 0))
			errsc <- err
		}()
	}
	for gw.Counters().Counter("serve.requests").Value() < 4 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { gw.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on pending requests")
	}
	wg.Wait()
	close(errsc)
	for err := range errsc {
		if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("pending request got %v, want ErrClosed", err)
		}
	}
	if _, err := gw.Predict(context.Background(), row(1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: err = %v, want ErrClosed", err)
	}
}

// TestMetricsOnAdminEndpoint drives overload through the gateway and checks
// the shed/timeout counters and batch-size histogram are scrapable on a
// real /metrics page — the ISSUE's observability acceptance criterion.
func TestMetricsOnAdminEndpoint(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 64)}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Microsecond, Workers: 1, QueueSize: 1})
	defer gw.Close()

	adm := admin.New()
	adm.AddCounters(gw.Counters())
	adm.AddGauges(gw.Gauges())
	adm.AddHistograms(gw.Histograms())
	adm.AddValueHistograms(gw.ValueHistograms())
	addr, err := adm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	// One success (batch histogram), one timeout, and queue-full sheds.
	be.gate <- struct{}{}
	if _, err := gw.Predict(context.Background(), row(1, 0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gw.Predict(ctx, row(2, 0))
		}()
	}
	wg.Wait()
	cancel()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"teamnet_serve_requests",
		"teamnet_serve_batch_size_bucket",
		"teamnet_serve_batch_size_count",
		"teamnet_serve_e2e",
		"teamnet_serve_queue_wait",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Under this overload either sheds or timeouts (or both) must be > 0
	// and visible.
	sheds := gw.Counters().Counter("serve.shed.queue_full").Value() + gw.Counters().Counter("serve.shed.expired").Value()
	timeouts := gw.Counters().Counter("serve.timeouts").Value()
	if sheds+timeouts == 0 {
		t.Fatal("overload produced neither sheds nor timeouts")
	}
	if sheds > 0 && !strings.Contains(page, "teamnet_serve_shed_") {
		t.Error("/metrics missing shed counters despite sheds")
	}
	if timeouts > 0 && !strings.Contains(page, "teamnet_serve_timeouts") {
		t.Error("/metrics missing teamnet_serve_timeouts despite timeouts")
	}
}

// TestBatchSpanTree: with a tracer installed, a dispatched batch records a
// "serve.batch" span whose children include one "serve.request" per member
// (each with a "queue.wait" child) and the backend's own subtree.
func TestBatchSpanTree(t *testing.T) {
	be := backendFunc(func(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
		// A backend-side span must nest under the batch span via the
		// ambient trace context, like Master.InferContext's "infer" root.
		parent := trace.FromContext(ctx)
		if !parent.Valid() {
			return nil, nil, errors.New("no trace context reached the backend")
		}
		probs := tensor.New(x.Shape[0], 2)
		for r := 0; r < x.Shape[0]; r++ {
			probs.RowSlice(r)[0], probs.RowSlice(r)[1] = 0.5, 0.5
		}
		return probs, make([]int, x.Shape[0]), nil
	})
	gw := New(be, Config{MaxBatch: 4, MaxLinger: 10 * time.Millisecond, Workers: 1})
	defer gw.Close()
	tr := trace.New("gw", 0)
	gw.SetTracer(tr)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gw.Predict(context.Background(), row(1, 0)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	spans := tr.Snapshot(0)
	var batchID uint64
	var reqSpans, waitSpans int
	for _, s := range spans {
		if s.Name == "serve.batch" {
			batchID = s.SpanID
		}
	}
	if batchID == 0 {
		t.Fatalf("no serve.batch span recorded; spans: %+v", spans)
	}
	reqIDs := map[uint64]bool{}
	for _, s := range spans {
		if s.Name == "serve.request" && s.ParentID != 0 {
			reqSpans++
			reqIDs[s.SpanID] = true
		}
	}
	for _, s := range spans {
		if s.Name == "queue.wait" && reqIDs[s.ParentID] {
			waitSpans++
		}
	}
	if reqSpans != 3 {
		t.Fatalf("recorded %d serve.request spans, want 3", reqSpans)
	}
	if waitSpans != 3 {
		t.Fatalf("recorded %d queue.wait spans under requests, want 3", waitSpans)
	}
}

// TestHTTPPredictRoundTrip exercises the JSON endpoint end to end against
// the echo backend, including the error-status mapping.
func TestHTTPPredictRoundTrip(t *testing.T) {
	gw := New(&echoBackend{}, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Workers: 1})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"x": [[7, 2, 0]], "timeout_ms": 2000}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"probs"`, `"winners":[2]`, `"entropy"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("response %s missing %s", body, want)
		}
	}

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"empty rows", `{"x": []}`, http.StatusBadRequest},
		{"ragged", `{"x": [[1,2],[1]]}`, http.StatusBadRequest},
		{"bad json", `{"x": [[1,2]`, http.StatusBadRequest},
		{"unknown field", `{"x": [[1,2]], "bogus": 1}`, http.StatusBadRequest},
		{"oversized", `{"x": [[1],[1],[1],[1],[1]]}`, http.StatusBadRequest},
		{"empty row", `{"x": [[]]}`, http.StatusBadRequest},
		{"method", "", http.StatusMethodNotAllowed},
	} {
		var resp *http.Response
		var err error
		if tc.name == "method" {
			resp, err = http.Get(srv.URL + "/predict")
		} else {
			resp, err = http.Post(srv.URL+"/predict", "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestHTTPStatusMapping maps gateway errors onto HTTP statuses.
func TestHTTPStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{fmt.Errorf("wrapped: %w", ErrQueueFull), http.StatusTooManyRequests},
		{errors.New("backend exploded"), http.StatusInternalServerError},
	} {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
