// Package serve is the batching, deadline-aware inference gateway that
// stands between many concurrent callers and one cluster master. The
// cluster runtime (PR 4's multiplexed links) can carry many inferences in
// flight, but every caller still drives Master.Infer one blocking batch at
// a time; this package turns that capacity into a serving layer:
//
//   - a bounded admission queue with load shedding: a full queue rejects
//     instantly (ErrQueueFull, "serve.shed.queue_full"), and requests whose
//     deadline expired while queued are dropped before wasting a broadcast
//     ("serve.shed.expired") — under overload the gateway degrades by
//     answering fewer requests fast instead of all requests late;
//   - two priority lanes (PriorityHigh drains first) so latency-critical
//     traffic overtakes bulk traffic at the same queue;
//   - a dynamic micro-batcher: queued single-sample (or small-batch)
//     requests coalesce into one tensor batch under a MaxBatch/MaxLinger
//     policy, a worker pool dispatches the batch through
//     Master.InferContext — one broadcast round trip amortized over every
//     row — and the per-row results (probs, winner, entropy) scatter back
//     to their callers;
//   - deadline plumbing end to end: each request's context bounds its queue
//     wait and its share of the dispatched batch, and an expired request
//     stops burning peer round trips (see Master.InferContext);
//   - demand shaping (cache.go): a content-addressed response cache keyed
//     by the canonicalized input tensor plus the model version, and
//     singleflight coalescing so identical in-flight inputs cost one queued
//     inference — repeated edge traffic (hot queries, duplicate sensor
//     frames) stops paying retail for the ensemble.
//
// Everything is observable: gauges ("serve.queue_depth",
// "serve.inflight_batches"), latency histograms ("serve.queue_wait",
// "serve.e2e"), the batch-size value histogram ("serve.batch_size"), shed
// and timeout counters, and — with a tracer installed — a "serve.batch"
// span per dispatch whose children are the coalesced requests and the
// cluster's "infer" span tree.
//
// The HTTP front-end in http.go exposes Predict as a JSON endpoint; the
// teamnet-serve command wires both to a live master.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/tensor"
	"github.com/teamnet/teamnet/internal/trace"
)

// Backend is the inference engine behind the gateway: *cluster.Master in
// production, a scripted fake in tests. InferContext must honor ctx
// cancellation and be safe for concurrent calls.
type Backend interface {
	InferContext(ctx context.Context, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, err error)
}

// DegradedBackend is the optional partial-ensemble interface a Backend may
// implement (cluster.Master does): InferQuorumContext answers with whatever
// subset of the ensemble replied once soft elapses or quarantine thins the
// fleet, reporting live out of total nodes. With Config.Degraded set, the
// gateway prefers this path and marks live < total answers Degraded — a
// partial answer with quorum metadata instead of a 5xx.
type DegradedBackend interface {
	Backend
	InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (probs *tensor.Tensor, winners []int, live, total int, err error)
}

// Config tunes the gateway. The zero value means "use the defaults" for
// every field.
type Config struct {
	// MaxBatch is the row budget per dispatched batch; a batch is flushed
	// the moment it is full. Default 16.
	MaxBatch int
	// MaxLinger bounds how long the batcher waits for more rows after the
	// first request of a batch arrives — the latency price paid for
	// coalescing. Default 2ms.
	MaxLinger time.Duration
	// QueueSize bounds each admission lane; a full lane sheds instantly.
	// Default 256.
	QueueSize int
	// Workers is the number of concurrent batch dispatches. More workers
	// keep the pipeline full while a batch waits on the network; the mux
	// window bounds what actually rides each peer link. Default 2.
	Workers int
	// DefaultTimeout is applied to requests whose context carries no
	// deadline of its own. Zero leaves them unbounded.
	DefaultTimeout time.Duration
	// Degraded routes batches through the backend's partial-ensemble path
	// (DegradedBackend) when it implements one: quarantined or straggling
	// experts thin the answer instead of failing it, and the response
	// carries degraded/quorum metadata. Off by default — strict ensembles
	// unless the operator opts in.
	Degraded bool
	// SLOTarget is the end-to-end latency objective the brownout controller
	// defends: when the recent burn rate (requests shed, timed out, or
	// served slower than this target, as a fraction of all finished
	// requests) exceeds BrownoutBurn, the controller tightens MaxLinger and
	// the admission queue cap stepwise, trading coalescing efficiency and
	// queue depth for tail latency; it relaxes as the burn subsides. Zero
	// disables the controller.
	SLOTarget time.Duration
	// BrownoutBurn is the burn-rate threshold that tightens the gateway.
	// Default 0.1 (10% of recent requests missing the SLO).
	BrownoutBurn float64
	// CacheSize bounds the content-addressed response cache (entries);
	// 0 disables caching. Full answers are stored under a digest of the
	// canonicalized input tensor plus the model version (SetModelVersion)
	// and served without a broadcast on repeat; degraded answers are never
	// cached. See cache.go.
	CacheSize int
	// CacheTTL bounds a cached answer's age. Zero means entries live until
	// LRU eviction or a SetModelVersion invalidation.
	CacheTTL time.Duration
	// Coalesce enables duplicate-request coalescing (singleflight):
	// identical in-flight input tensors share one queued inference, with
	// the result scattered to every waiter. Off by default; teamnet-serve
	// turns it on.
	Coalesce bool
}

func (c Config) normalized() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.BrownoutBurn <= 0 || c.BrownoutBurn > 1 {
		c.BrownoutBurn = 0.1
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	return c
}

// Priority selects an admission lane.
type Priority int

const (
	// PriorityNormal is the default lane.
	PriorityNormal Priority = iota
	// PriorityHigh drains before normal traffic at every coalescing step.
	PriorityHigh
)

// Gateway errors. Deadline expiry surfaces as the request context's error
// (context.DeadlineExceeded / context.Canceled), not a gateway sentinel.
var (
	// ErrQueueFull rejects a request at admission: the lane is at
	// QueueSize. HTTP maps it to 429.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed fails requests caught in a gateway shutdown.
	ErrClosed = errors.New("serve: gateway closed")
	// ErrTooManyRows rejects a request larger than MaxBatch — the gateway
	// coalesces small requests; oversized batches belong on Master.Infer
	// directly.
	ErrTooManyRows = errors.New("serve: request exceeds the gateway's max batch")
)

// Result is one request's share of a dispatched batch: its own rows'
// combined probabilities, winning node per row, and the predictive entropy
// of each winning distribution. Degraded reports a partial-ensemble answer
// (Live of Nodes experts participated) — the graceful middle ground between
// a full answer and an error.
type Result struct {
	Probs   *tensor.Tensor
	Winners []int
	Entropy []float64

	Degraded bool
	Live     int // nodes that contributed to this answer
	Nodes    int // full ensemble size

	// Cached marks an answer served from the response cache: no inference
	// ran for this request. Always false when caching is off.
	Cached bool
}

type response struct {
	res Result
	err error
}

// request is one queued unit of work.
type request struct {
	x    *tensor.Tensor
	ctx  context.Context
	enq  time.Time
	resc chan response // buffered 1: the batcher never blocks on a gone caller
}

// Gateway is the serving layer. Create with New, stop with Close. Methods
// are safe for concurrent use.
type Gateway struct {
	cfg     Config
	backend Backend

	counters   *metrics.CounterSet
	gauges     *metrics.GaugeSet
	hists      *metrics.HistogramSet
	valueHists *metrics.ValueHistogramSet

	trMu sync.Mutex
	tr   *trace.Tracer

	lanes    [2]chan *request // index by laneIdx: 0 = high, 1 = normal
	dispatch chan []*request
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup

	// Brownout controller state: the effective linger and per-lane
	// admission cap start at the configured values and tighten stepwise
	// (halving per level) while the SLO burn rate stays high.
	effLinger atomic.Int64 // ns
	effQueue  atomic.Int64 // per-lane admission cap
	level     atomic.Int64
	sloOK     atomic.Int64 // finished within SLOTarget since last tick
	sloMiss   atomic.Int64 // shed, timed out, or finished over target

	// Queue drain-rate estimate behind RetryAfter.
	dequeued  atomic.Int64
	drainMu   sync.Mutex
	drainT    time.Time
	drainN    int64
	drainRate float64 // requests/second leaving the queue, smoothed

	// Demand shaping (cache.go): the content-addressed response cache,
	// the singleflight table, and the model-version label that scopes
	// every cache key.
	cache        *responseCache // nil when caching is off
	cacheHits    atomic.Int64
	cacheLookups atomic.Int64
	flightMu     sync.Mutex
	flights      map[cacheKey]*flight
	modelMu      sync.RWMutex
	modelVersion string
}

// New starts a gateway over backend: the batcher goroutine plus
// cfg.Workers dispatch workers.
func New(backend Backend, cfg Config) *Gateway {
	cfg = cfg.normalized()
	g := &Gateway{
		cfg:        cfg,
		backend:    backend,
		counters:   metrics.NewCounterSet(),
		gauges:     metrics.NewGaugeSet(),
		hists:      metrics.NewHistogramSet(),
		valueHists: metrics.NewValueHistogramSet(),
		dispatch:   make(chan []*request),
		quit:       make(chan struct{}),
		flights:    make(map[cacheKey]*flight),
	}
	if cfg.CacheSize > 0 {
		g.cache = newResponseCache(cfg.CacheSize, cfg.CacheTTL)
	}
	g.lanes[0] = make(chan *request, cfg.QueueSize)
	g.lanes[1] = make(chan *request, cfg.QueueSize)
	g.effLinger.Store(int64(cfg.MaxLinger))
	g.effQueue.Store(int64(cfg.QueueSize))
	g.wg.Add(1)
	go g.batchLoop()
	for i := 0; i < cfg.Workers; i++ {
		g.wg.Add(1)
		go g.workerLoop()
	}
	if cfg.SLOTarget > 0 {
		g.wg.Add(1)
		go g.brownoutLoop()
	}
	return g
}

// laneIdx maps a Priority onto its lane slot (high first).
func laneIdx(p Priority) int {
	if p == PriorityHigh {
		return 0
	}
	return 1
}

// Counters exposes the gateway's event counters ("serve.requests",
// "serve.shed.queue_full", "serve.shed.expired", "serve.timeouts",
// "serve.batches", "serve.batch_errors", and the demand-shaping series
// "serve.cache.{hits,misses,expired,evictions,coalesced,invalidations}").
func (g *Gateway) Counters() *metrics.CounterSet { return g.counters }

// Gauges exposes the gateway's level metrics ("serve.queue_depth",
// "serve.inflight_batches", "serve.cache.size",
// "serve.cache.hit_rate_pct").
func (g *Gateway) Gauges() *metrics.GaugeSet { return g.gauges }

// Histograms exposes the gateway's latency histograms ("serve.queue_wait",
// "serve.e2e").
func (g *Gateway) Histograms() *metrics.HistogramSet { return g.hists }

// ValueHistograms exposes the unitless histograms ("serve.batch_size").
func (g *Gateway) ValueHistograms() *metrics.ValueHistogramSet { return g.valueHists }

// SetTracer installs (or, with nil, removes) the gateway's span collector.
// Install the master's tracer here so each "serve.batch" span and the
// cluster's "infer" subtree land in one ring.
func (g *Gateway) SetTracer(tr *trace.Tracer) {
	g.trMu.Lock()
	g.tr = tr
	g.trMu.Unlock()
}

// Tracer returns the installed tracer (nil when tracing is off).
func (g *Gateway) Tracer() *trace.Tracer {
	g.trMu.Lock()
	defer g.trMu.Unlock()
	return g.tr
}

// Options tune one Predict call.
type Options struct {
	Priority Priority
}

// Predict queues x (rows × features, 1..MaxBatch rows) on the normal lane
// and blocks until its share of a dispatched batch scatters back, the
// context expires, or the gateway sheds it.
func (g *Gateway) Predict(ctx context.Context, x *tensor.Tensor) (Result, error) {
	return g.PredictOpts(ctx, x, Options{})
}

// PredictOpts is Predict with an explicit priority lane.
func (g *Gateway) PredictOpts(ctx context.Context, x *tensor.Tensor, opts Options) (Result, error) {
	if x == nil || x.Rank() != 2 || x.Shape[0] < 1 || x.Shape[1] < 1 {
		return Result{}, fmt.Errorf("serve: input must be a non-empty rows×features tensor")
	}
	if x.Shape[0] > g.cfg.MaxBatch {
		return Result{}, fmt.Errorf("%w: %d rows > %d", ErrTooManyRows, x.Shape[0], g.cfg.MaxBatch)
	}
	if g.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	g.counters.Counter("serve.requests").Inc()
	if g.shaped() {
		return g.predictShaped(ctx, x, opts)
	}
	return g.predictQueued(ctx, x, opts)
}

// predictQueued is the admission-queue path every non-cached, non-coalesced
// request (and every singleflight leader) takes: enqueue on the priority
// lane, wait for the scattered share or the deadline.
func (g *Gateway) predictQueued(ctx context.Context, x *tensor.Tensor, opts Options) (Result, error) {
	req := &request{x: x, ctx: ctx, enq: time.Now(), resc: make(chan response, 1)}

	// Admission: reject-on-full, never block the caller on a queue. The
	// brownout controller may have tightened the cap below the lane's
	// buffered capacity, so the depth check comes first.
	lane := g.lanes[laneIdx(opts.Priority)]
	if len(lane) >= int(g.effQueue.Load()) {
		g.counters.Counter("serve.shed.queue_full").Inc()
		g.sloBurned()
		return Result{}, ErrQueueFull
	}
	select {
	case lane <- req:
		g.gauges.Gauge("serve.queue_depth").Inc()
	case <-g.quit:
		return Result{}, ErrClosed
	default:
		g.counters.Counter("serve.shed.queue_full").Inc()
		g.sloBurned()
		return Result{}, ErrQueueFull
	}

	select {
	case r := <-req.resc:
		e2e := time.Since(req.enq)
		g.hists.Observe("serve.e2e", e2e)
		g.sloFinished(e2e, r.err)
		return r.res, r.err
	case <-ctx.Done():
		// The request may still be queued (the batcher will shed it as
		// expired) or mid-batch (its row computes, nobody reads it); either
		// way this caller is done waiting.
		g.counters.Counter("serve.timeouts").Inc()
		g.hists.Observe("serve.e2e", time.Since(req.enq))
		g.sloBurned()
		return Result{}, ctx.Err()
	case <-g.quit:
		return Result{}, ErrClosed
	}
}

// --- SLO burn accounting and the brownout controller -----------------------

// sloFinished classifies one answered request against the SLO target.
func (g *Gateway) sloFinished(e2e time.Duration, err error) {
	if g.cfg.SLOTarget <= 0 {
		return
	}
	if err == nil && e2e <= g.cfg.SLOTarget {
		g.sloOK.Add(1)
	} else {
		g.sloMiss.Add(1)
	}
}

// sloBurned records one request that never got a timely answer.
func (g *Gateway) sloBurned() {
	if g.cfg.SLOTarget > 0 {
		g.sloMiss.Add(1)
	}
}

// brownoutMaxLevel bounds the tightening: at level 3 the linger and queue
// cap sit at 1/8th of their configured values.
const brownoutMaxLevel = 3

// brownoutLoop is the controller: every tick it reads the burn rate of the
// last window and tightens (burn above BrownoutBurn) or relaxes (burn well
// below it, or no evidence of trouble) one level at a time. Level L maps to
// MaxLinger>>L and QueueSize>>L — under SLO pressure the gateway stops
// waiting for fuller batches and stops accepting queue depth it can no
// longer drain in time, shedding early instead of serving everything late.
func (g *Gateway) brownoutLoop() {
	defer g.wg.Done()
	const tick = 100 * time.Millisecond
	const minEvidence = 20 // requests per window before burn is trusted
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-g.quit:
			return
		}
		ok := g.sloOK.Swap(0)
		miss := g.sloMiss.Swap(0)
		total := ok + miss
		level := g.level.Load()
		switch {
		case total >= minEvidence && float64(miss)/float64(total) > g.cfg.BrownoutBurn:
			if level < brownoutMaxLevel {
				level++
				g.counters.Counter("serve.brownout.tightened").Inc()
			}
		case total < minEvidence || float64(miss)/float64(total) < g.cfg.BrownoutBurn/4:
			if level > 0 {
				level--
				g.counters.Counter("serve.brownout.relaxed").Inc()
			}
		}
		g.level.Store(level)
		g.gauges.Gauge("serve.brownout_level").Set(level)
		g.effLinger.Store(int64(g.cfg.MaxLinger) >> level)
		cap := g.cfg.QueueSize >> level
		if cap < 1 {
			cap = 1
		}
		g.effQueue.Store(int64(cap))
	}
}

// noteDequeue feeds the drain-rate estimate behind RetryAfter.
func (g *Gateway) noteDequeue() {
	g.gauges.Gauge("serve.queue_depth").Dec()
	g.dequeued.Add(1)
}

// RetryAfter estimates how long a rejected client should back off before
// the queue has drained: current depth over the recent dequeue rate,
// clamped into [1s, 30s]. With no drain observed yet it answers 1s.
func (g *Gateway) RetryAfter() time.Duration {
	depth := g.gauges.Gauge("serve.queue_depth").Value()
	now := time.Now()
	n := g.dequeued.Load()
	g.drainMu.Lock()
	if g.drainT.IsZero() {
		g.drainT, g.drainN = now, n
	} else if dt := now.Sub(g.drainT); dt >= 100*time.Millisecond {
		rate := float64(n-g.drainN) / dt.Seconds()
		if g.drainRate == 0 {
			g.drainRate = rate
		} else {
			g.drainRate = 0.5*g.drainRate + 0.5*rate
		}
		g.drainT, g.drainN = now, n
	}
	rate := g.drainRate
	g.drainMu.Unlock()
	if rate <= 0 || depth <= 0 {
		return time.Second
	}
	d := time.Duration(float64(depth) / rate * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Close stops the gateway: queued and not-yet-dispatched requests fail with
// ErrClosed, in-flight batches finish, workers drain, then Close returns.
// The backend is not closed — the gateway borrows it.
func (g *Gateway) Close() error {
	g.quitOnce.Do(func() { close(g.quit) })
	g.wg.Wait()
	return nil
}

// --- batcher ---------------------------------------------------------------

// batchLoop is the single coalescing goroutine: block for a first request,
// linger for more until the row budget or the clock runs out, hand the
// batch to a worker.
func (g *Gateway) batchLoop() {
	defer g.wg.Done()
	defer close(g.dispatch)
	var held *request // deferred to the next batch on a feature-width change
	for {
		first := held
		held = nil
		if first == nil {
			first = g.nextRequest()
			if first == nil {
				g.drainLanes()
				return
			}
		}
		if g.shedExpired(first) {
			continue
		}
		batch := []*request{first}
		rows, width := first.x.Shape[0], first.x.Shape[1]
		linger := time.NewTimer(time.Duration(g.effLinger.Load()))
		for rows < g.cfg.MaxBatch {
			req, open := g.lingerRequest(linger.C)
			if req == nil {
				if !open {
					linger.Stop()
					g.respondAll(batch, ErrClosed)
					g.drainLanes()
					return
				}
				break // linger expired: flush what we have
			}
			if g.shedExpired(req) {
				continue
			}
			if req.x.Shape[1] != width {
				// Mixed feature widths cannot share one tensor: flush the
				// current batch and lead the next one with this request.
				held = req
				break
			}
			batch = append(batch, req)
			rows += req.x.Shape[0]
		}
		linger.Stop()
		select {
		case g.dispatch <- batch:
		case <-g.quit:
			g.respondAll(batch, ErrClosed)
		}
	}
}

// nextRequest blocks for the first request of a batch, high lane first.
// nil means the gateway is closing.
func (g *Gateway) nextRequest() *request {
	// Fast path: drain high-priority work before even looking at normal.
	select {
	case req := <-g.lanes[0]:
		g.noteDequeue()
		return req
	default:
	}
	select {
	case req := <-g.lanes[0]:
		g.noteDequeue()
		return req
	case req := <-g.lanes[1]:
		g.noteDequeue()
		return req
	case <-g.quit:
		return nil
	}
}

// lingerRequest waits for one more request while the linger clock runs.
// (nil, true) means the linger expired; (nil, false) means shutdown.
func (g *Gateway) lingerRequest(lingerC <-chan time.Time) (*request, bool) {
	select {
	case req := <-g.lanes[0]:
		g.noteDequeue()
		return req, true
	default:
	}
	select {
	case req := <-g.lanes[0]:
		g.noteDequeue()
		return req, true
	case req := <-g.lanes[1]:
		g.noteDequeue()
		return req, true
	case <-lingerC:
		return nil, true
	case <-g.quit:
		return nil, false
	}
}

// shedExpired drops a request whose caller already stopped waiting,
// before it costs a broadcast.
func (g *Gateway) shedExpired(r *request) bool {
	if err := r.ctx.Err(); err != nil {
		g.counters.Counter("serve.shed.expired").Inc()
		r.resc <- response{err: err}
		return true
	}
	return false
}

// respondAll fails every member of a batch with err.
func (g *Gateway) respondAll(batch []*request, err error) {
	for _, r := range batch {
		r.resc <- response{err: err}
	}
}

// drainLanes fails everything still queued during shutdown.
func (g *Gateway) drainLanes() {
	for _, lane := range g.lanes {
		for {
			select {
			case req := <-lane:
				g.gauges.Gauge("serve.queue_depth").Dec()
				req.resc <- response{err: ErrClosed}
			default:
				goto next
			}
		}
	next:
	}
}

// --- dispatch workers ------------------------------------------------------

func (g *Gateway) workerLoop() {
	defer g.wg.Done()
	for batch := range g.dispatch {
		g.runBatch(batch)
	}
}

// batchDeadline resolves the coalesced batch's dispatch deadline: the
// LATEST member deadline, so the batch can serve its longest-lived member;
// rows whose own caller expires earlier are simply not read. A single
// member with no deadline unbounds the batch.
func batchDeadline(batch []*request) (time.Time, bool) {
	var latest time.Time
	for _, r := range batch {
		dl, ok := r.ctx.Deadline()
		if !ok {
			return time.Time{}, false
		}
		if dl.After(latest) {
			latest = dl
		}
	}
	return latest, true
}

// runBatch coalesces the batch's rows into one tensor, drives the backend,
// and scatters per-row results back to each caller.
func (g *Gateway) runBatch(batch []*request) {
	g.gauges.Gauge("serve.inflight_batches").Inc()
	defer g.gauges.Gauge("serve.inflight_batches").Dec()

	rows := 0
	for _, r := range batch {
		rows += r.x.Shape[0]
	}
	g.counters.Counter("serve.batches").Inc()
	g.counters.Counter("serve.batched_rows").Add(int64(rows))
	g.valueHists.Observe("serve.batch_size", int64(rows))

	dispatchStart := time.Now()
	for _, r := range batch {
		g.hists.Observe("serve.queue_wait", dispatchStart.Sub(r.enq))
	}

	// Gather: one contiguous rows×features tensor.
	width := batch[0].x.Shape[1]
	x := tensor.New(rows, width)
	off := 0
	for _, r := range batch {
		for i := 0; i < r.x.Shape[0]; i++ {
			copy(x.RowSlice(off), r.x.RowSlice(i))
			off++
		}
	}

	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if dl, ok := batchDeadline(batch); ok {
		ctx, cancel = context.WithDeadline(ctx, dl)
	}
	defer cancel()

	tr := g.Tracer()
	span := tr.Start(trace.Context{}, "serve.batch")
	ctx = trace.NewContext(ctx, span.Ctx())

	var probs *tensor.Tensor
	var winners []int
	var err error
	var live, nodes int
	degraded := false
	if db, ok := g.backend.(DegradedBackend); ok && g.cfg.Degraded {
		probs, winners, live, nodes, err = g.inferQuorumGuarded(ctx, db, x, quorumSoft(ctx))
		degraded = err == nil && live < nodes
	} else {
		probs, winners, err = g.inferGuarded(ctx, x)
	}
	span.EndErr(err)
	if err == nil && (probs == nil || probs.Shape[0] != rows || len(winners) != rows) {
		err = fmt.Errorf("serve: backend returned %d result rows for a %d-row batch", resultRows(probs, winners), rows)
	}
	if err != nil {
		g.counters.Counter("serve.batch_errors").Inc()
		g.scatterError(tr, span.Ctx(), batch, dispatchStart, err)
		return
	}
	ent := tensor.EntropyRows(probs)

	// Scatter: each caller gets exactly its own rows back, plus a
	// "serve.request" span (queue wait as a child) linked under the batch.
	off = 0
	for _, r := range batch {
		n := r.x.Shape[0]
		res := Result{
			Probs:    tensor.New(n, probs.Shape[1]),
			Winners:  append([]int(nil), winners[off:off+n]...),
			Entropy:  append([]float64(nil), ent.Data[off:off+n]...),
			Degraded: degraded,
			Live:     live,
			Nodes:    nodes,
		}
		if degraded {
			g.counters.Counter("serve.degraded").Inc()
		}
		for i := 0; i < n; i++ {
			copy(res.Probs.RowSlice(i), probs.RowSlice(off+i))
		}
		off += n
		reqSpan := tr.Record(span.Ctx(), "serve.request", "", "", r.enq, time.Since(r.enq))
		tr.Record(reqSpan, "queue.wait", "", "", r.enq, dispatchStart.Sub(r.enq))
		r.resc <- response{res: res}
	}
}

// quorumSoft derives the partial-answer deadline from the batch context:
// 80% of the time remaining, so the degraded answer is assembled and
// scattered before the slowest caller gives up. No deadline means no soft
// cutoff — the quorum path then degrades only around quarantined peers.
func quorumSoft(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return 0
	}
	return rem * 4 / 5
}

// inferQuorumGuarded is inferGuarded for the partial-ensemble path.
func (g *Gateway) inferQuorumGuarded(ctx context.Context, db DegradedBackend, x *tensor.Tensor, soft time.Duration) (probs *tensor.Tensor, winners []int, live, nodes int, err error) {
	defer func() {
		if r := recover(); r != nil {
			g.counters.Counter("serve.panics").Inc()
			probs, winners, live, nodes = nil, nil, 0, 0
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	return db.InferQuorumContext(ctx, x, soft)
}

// inferGuarded drives the backend with a panic guard: a model fed a batch
// it cannot take (e.g. a feature width the network was not built for)
// panics deep in the math layers, and without the recover that would kill
// the whole gateway process on one malformed-but-well-formed request. The
// panic becomes this batch's error ("serve.panics" counted); other batches
// are untouched.
func (g *Gateway) inferGuarded(ctx context.Context, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			g.counters.Counter("serve.panics").Inc()
			probs, winners = nil, nil
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	return g.backend.InferContext(ctx, x)
}

// scatterError fails every member and records their spans with error
// status, so a failed batch is as visible in the ring as a served one.
func (g *Gateway) scatterError(tr *trace.Tracer, batchCtx trace.Context, batch []*request, dispatchStart time.Time, err error) {
	for _, r := range batch {
		reqSpan := tr.Record(batchCtx, "serve.request", "", trace.StatusError, r.enq, time.Since(r.enq))
		tr.Record(reqSpan, "queue.wait", "", "", r.enq, dispatchStart.Sub(r.enq))
		r.resc <- response{err: err}
	}
}

// resultRows sizes a malformed backend reply for the error message.
func resultRows(probs *tensor.Tensor, winners []int) int {
	if probs != nil {
		return probs.Shape[0]
	}
	return len(winners)
}
