package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
)

// maxPredictBody bounds a predict request's JSON payload. At 8 MiB it fits
// thousands of MNIST-sized rows — far past MaxBatch — while keeping a
// hostile client from ballooning the decoder.
const maxPredictBody = 8 << 20

// PredictRequest is the JSON body of POST /predict. X is row-major:
// X[i] is one sample's feature vector; all rows must share one width.
type PredictRequest struct {
	// X holds the input rows. Required, non-empty.
	X [][]float64 `json:"x"`
	// TimeoutMS optionally bounds this request end to end, overriding the
	// gateway's DefaultTimeout. Zero defers to the gateway.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Priority selects the admission lane: "" or "normal", or "high".
	Priority string `json:"priority,omitempty"`
}

// PredictResponse is the JSON reply: one entry per input row.
type PredictResponse struct {
	// Probs[i] is row i's combined class distribution.
	Probs [][]float64 `json:"probs"`
	// Winners[i] is the index of the node whose expert won row i.
	Winners []int `json:"winners"`
	// Entropy[i] is the predictive entropy of row i's winning distribution.
	Entropy []float64 `json:"entropy"`
	// Degraded marks a partial-ensemble answer: some experts were
	// quarantined or too slow, and the reply combines only those that made
	// it. Absent (false) on full-ensemble answers.
	Degraded bool `json:"degraded,omitempty"`
	// Quorum reports how many nodes contributed when Degraded is set.
	Quorum *Quorum `json:"quorum,omitempty"`
	// Cached marks an answer served from the gateway's content-addressed
	// response cache: a byte-identical input was answered by this model
	// version within the cache TTL, so no inference ran. Absent (false) on
	// freshly computed answers — including coalesced ones, which share a
	// live inference. Degraded answers are never cached.
	Cached bool `json:"cached,omitempty"`
}

// Quorum is the participation metadata attached to degraded answers.
type Quorum struct {
	// Live is the number of nodes whose predictions are in the answer.
	Live int `json:"live"`
	// Nodes is the full ensemble size.
	Nodes int `json:"nodes"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// ParsePredict decodes and validates a predict request body into the input
// tensor and options. It rejects — with an error safe to echo to the
// client — empty bodies, trailing garbage, ragged or empty rows, non-finite
// values (NaN and ±Inf would poison a softmax downstream), and negative
// timeouts. maxRows bounds the row count (the gateway's MaxBatch).
func ParsePredict(body io.Reader, maxRows int) (*tensor.Tensor, Options, time.Duration, error) {
	var req PredictRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, Options{}, 0, fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return nil, Options{}, 0, errors.New("bad request body: trailing data after JSON object")
	}
	if len(req.X) == 0 {
		return nil, Options{}, 0, errors.New("x must contain at least one row")
	}
	if maxRows > 0 && len(req.X) > maxRows {
		return nil, Options{}, 0, fmt.Errorf("x has %d rows; this gateway accepts at most %d per request", len(req.X), maxRows)
	}
	width := len(req.X[0])
	if width == 0 {
		return nil, Options{}, 0, errors.New("x rows must be non-empty feature vectors")
	}
	for i, row := range req.X {
		if len(row) != width {
			return nil, Options{}, 0, fmt.Errorf("ragged input: row 0 has %d features, row %d has %d", width, i, len(row))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, Options{}, 0, fmt.Errorf("non-finite value at x[%d][%d]", i, j)
			}
		}
	}
	if req.TimeoutMS < 0 {
		return nil, Options{}, 0, errors.New("timeout_ms must be non-negative")
	}
	var opts Options
	switch req.Priority {
	case "", "normal":
	case "high":
		opts.Priority = PriorityHigh
	default:
		return nil, Options{}, 0, fmt.Errorf("unknown priority %q (want \"normal\" or \"high\")", req.Priority)
	}
	x := tensor.New(len(req.X), width)
	for i, row := range req.X {
		copy(x.RowSlice(i), row)
	}
	return x, opts, time.Duration(req.TimeoutMS) * time.Millisecond, nil
}

// Handler returns the gateway's HTTP mux:
//
//	POST /predict   JSON inference (see PredictRequest/PredictResponse)
//
// Status mapping: 400 for malformed input, 429 when the admission queue
// sheds (the client should back off), 503 on shutdown, 504 when the
// request's deadline expired, 500 for backend failures.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", g.handlePredict)
	return mux
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	x, opts, timeout, err := ParsePredict(io.LimitReader(r.Body, maxPredictBody), g.cfg.MaxBatch)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := g.PredictOpts(ctx, x, opts)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			// Back-pressure hint: how long until the admission queue has
			// drained at its current rate (docs/OPERATIONS.md).
			w.Header().Set("Retry-After", retryAfterSeconds(g.RetryAfter()))
		}
		writeJSONError(w, code, err.Error())
		return
	}
	resp := PredictResponse{
		Probs:   make([][]float64, res.Probs.Shape[0]),
		Winners: res.Winners,
		Entropy: res.Entropy,
	}
	if res.Degraded {
		resp.Degraded = true
		resp.Quorum = &Quorum{Live: res.Live, Nodes: res.Nodes}
	}
	resp.Cached = res.Cached
	for i := range resp.Probs {
		resp.Probs[i] = res.Probs.RowSlice(i)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// statusFor maps a gateway error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrTooManyRows):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds renders a backoff duration as the whole-seconds form
// the Retry-After header wants, never below 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
