package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
)

// Demand-shaping tests: the content-addressed response cache and the
// singleflight coalescer (cache.go). All run under -race via make verify.

// countingBackend wraps echoBackend with a call counter so tests can prove
// how many inferences a traffic pattern actually cost.
type countingBackend struct {
	echo echoBackend
}

func (b *countingBackend) calls() int {
	b.echo.mu.Lock()
	defer b.echo.mu.Unlock()
	return len(b.echo.batches)
}

func (b *countingBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	return b.echo.InferContext(ctx, x)
}

// TestCacheHitSkipsBackend: a byte-identical repeat is answered from the
// cache — no second inference, Cached set, hit/miss counters moving.
func TestCacheHitSkipsBackend(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16})
	defer gw.Close()

	first, err := gw.Predict(context.Background(), row(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request flagged Cached")
	}
	second, err := gw.Predict(context.Background(), row(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if second.Winners[0] != first.Winners[0] || second.Probs.Data[1] != first.Probs.Data[1] {
		t.Fatalf("cached answer differs: %v vs %v", second, first)
	}
	if got := be.calls(); got != 1 {
		t.Fatalf("backend ran %d times, want 1", got)
	}
	c := gw.Counters()
	if c.Counter("serve.cache.hits").Value() != 1 || c.Counter("serve.cache.misses").Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1",
			c.Counter("serve.cache.hits").Value(), c.Counter("serve.cache.misses").Value())
	}
	if got := gw.Gauges().Gauge("serve.cache.hit_rate_pct").Value(); got != 50 {
		t.Fatalf("hit_rate_pct = %d, want 50", got)
	}
	// The cached result must not alias the stored copy: mutating it cannot
	// poison later hits.
	second.Probs.Data[0] = -999
	third, err := gw.Predict(context.Background(), row(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if third.Probs.Data[0] == -999 {
		t.Fatal("cached entry aliased a caller's result")
	}
}

// TestCacheTTLExpiry: an entry past its TTL misses (counted under
// serve.cache.expired) and the backend runs again.
func TestCacheTTLExpiry(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16, CacheTTL: 30 * time.Millisecond})
	defer gw.Close()

	if _, err := gw.Predict(context.Background(), row(1, 0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	res, err := gw.Predict(context.Background(), row(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("expired entry served as a hit")
	}
	if got := be.calls(); got != 2 {
		t.Fatalf("backend ran %d times, want 2 (entry should have expired)", got)
	}
	if got := gw.Counters().Counter("serve.cache.expired").Value(); got != 1 {
		t.Fatalf("serve.cache.expired = %d, want 1", got)
	}
}

// TestCacheLRUEviction: the bound holds, the oldest entry dies first, and
// evictions are counted.
func TestCacheLRUEviction(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 2})
	defer gw.Close()

	for i := 0; i < 3; i++ { // three distinct keys through a 2-entry cache
		if _, err := gw.Predict(context.Background(), row(float64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.Counters().Counter("serve.cache.evictions").Value(); got != 1 {
		t.Fatalf("serve.cache.evictions = %d, want 1", got)
	}
	if got := gw.Gauges().Gauge("serve.cache.size").Value(); got != 2 {
		t.Fatalf("serve.cache.size = %d, want 2", got)
	}
	// Key 1 was the LRU victim: re-requesting it is a miss...
	if res, err := gw.Predict(context.Background(), row(1, 0)); err != nil || res.Cached {
		t.Fatalf("evicted key served from cache (err %v, cached %v)", err, res.Cached)
	}
	// ...while key 3 is still resident.
	if res, err := gw.Predict(context.Background(), row(3, 0)); err != nil || !res.Cached {
		t.Fatalf("resident key missed (err %v, cached %v)", err, res.Cached)
	}
}

// TestSetModelVersionInvalidates: bumping the model version purges the
// cache and re-keys every digest, so a hot-swapped snapshot can never
// serve the old model's answers.
func TestSetModelVersionInvalidates(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16})
	defer gw.Close()
	gw.SetModelVersion("v1")

	if _, err := gw.Predict(context.Background(), row(5, 0)); err != nil {
		t.Fatal(err)
	}
	gw.SetModelVersion("v2")
	res, err := gw.Predict(context.Background(), row(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("answer from the old model version served after the swap")
	}
	if got := be.calls(); got != 2 {
		t.Fatalf("backend ran %d times, want 2", got)
	}
	if got := gw.Counters().Counter("serve.cache.invalidations").Value(); got != 1 {
		t.Fatalf("serve.cache.invalidations = %d, want 1", got)
	}
	// Same-version SetModelVersion is a no-op, not a purge.
	gw.SetModelVersion("v2")
	if res, err := gw.Predict(context.Background(), row(5, 0)); err != nil || !res.Cached {
		t.Fatalf("idempotent SetModelVersion purged the cache (err %v, cached %v)", err, res.Cached)
	}
}

// TestSingleflightCoalesce: with a leader wedged inside the backend, N
// identical requests join its flight; one release serves everyone from a
// single inference.
func TestSingleflightCoalesce(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 8), entered: make(chan struct{}, 8)}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Coalesce: true})
	defer gw.Close()

	x := row(9, 2)
	key := gw.digestFor(x)
	type out struct {
		res Result
		err error
	}
	results := make(chan out, 8)
	go func() {
		res, err := gw.Predict(context.Background(), x)
		results <- out{res, err}
	}()
	<-be.entered // the leader is inside the backend

	const waiters = 5
	for i := 0; i < waiters; i++ {
		go func() {
			res, err := gw.Predict(context.Background(), row(9, 2))
			results <- out{res, err}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.flightWaiters(key) < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters joined the flight", gw.flightWaiters(key), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	be.gate <- struct{}{} // release exactly one inference

	for i := 0; i < waiters+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.res.Winners[0] != 2 {
			t.Fatalf("winner %d, want 2", r.res.Winners[0])
		}
		if r.res.Cached {
			t.Fatal("coalesced share flagged Cached")
		}
	}
	be.echo.mu.Lock()
	calls := len(be.echo.batches)
	be.echo.mu.Unlock()
	if calls != 1 {
		t.Fatalf("%d identical requests cost %d inferences, want 1", waiters+1, calls)
	}
	if got := gw.Counters().Counter("serve.cache.coalesced").Value(); got != waiters {
		t.Fatalf("serve.cache.coalesced = %d, want %d", got, waiters)
	}
}

// TestWaiterDeadlineExpires: a coalesced waiter whose own deadline fires
// while the leader is still in flight gets its context error (the HTTP 504
// path), never a late share — and the leader is unaffected.
func TestWaiterDeadlineExpires(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 2), entered: make(chan struct{}, 2)}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Coalesce: true})
	defer gw.Close()

	x := row(3, 1)
	key := gw.digestFor(x)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := gw.Predict(context.Background(), x)
		leaderDone <- err
	}()
	<-be.entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	waiterDone := make(chan error, 1)
	go func() {
		_, err := gw.Predict(ctx, row(3, 1))
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gw.flightWaiters(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	// The waiter's deadline fires while the leader is still wedged.
	if err := <-waiterDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter got %v, want context.DeadlineExceeded", err)
	}
	if code := statusFor(context.DeadlineExceeded); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline maps to %d, want 504", code)
	}
	be.gate <- struct{}{}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter expiry: %v", err)
	}
	if got := gw.Counters().Counter("serve.cache.coalesced").Value(); got != 0 {
		t.Fatalf("expired waiter counted as coalesced (%d)", got)
	}
}

// TestWaiterRetriesAfterLeaderDeadline: the leader dies of its *own*
// deadline; a longer-lived waiter must not inherit that verdict — it
// retries as the new leader and succeeds.
func TestWaiterRetriesAfterLeaderDeadline(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 2), entered: make(chan struct{}, 2)}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Coalesce: true})
	defer gw.Close()

	x := row(4, 1)
	key := gw.digestFor(x)
	leaderCtx, cancelLeader := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := gw.Predict(leaderCtx, x)
		leaderDone <- err
	}()
	<-be.entered

	waiterDone := make(chan error, 1)
	go func() {
		_, err := gw.Predict(context.Background(), row(4, 1))
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gw.flightWaiters(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	if err := <-leaderDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader got %v, want context.DeadlineExceeded", err)
	}
	// The retrying waiter becomes its own leader and enters the backend;
	// release it.
	<-be.entered
	be.gate <- struct{}{}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's deadline: %v", err)
	}
}

// degradedFlipBackend serves one degraded answer, then full answers, so a
// test can prove degraded results never enter the cache.
type degradedFlipBackend struct {
	echo  echoBackend
	mu    sync.Mutex
	calls int
}

func (b *degradedFlipBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	return b.echo.InferContext(ctx, x)
}

func (b *degradedFlipBackend) InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (*tensor.Tensor, []int, int, int, error) {
	b.mu.Lock()
	b.calls++
	degraded := b.calls == 1
	b.mu.Unlock()
	probs, winners, err := b.echo.InferContext(ctx, x)
	if degraded {
		return probs, winners, 2, 3, err
	}
	return probs, winners, 3, 3, err
}

// TestDegradedNeverCached: a partial-ensemble answer reflects a transient
// fleet state — it must not be replayed from the cache once the fleet
// heals. The degraded answer is served (and may be shared with coalesced
// waiters), but the next identical request runs inference again; the full
// answer it gets IS cached.
func TestDegradedNeverCached(t *testing.T) {
	be := &degradedFlipBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16, Degraded: true})
	defer gw.Close()

	first, err := gw.Predict(context.Background(), row(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Degraded {
		t.Fatal("scripted degraded answer not flagged")
	}
	second, err := gw.Predict(context.Background(), row(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("degraded answer was served from the cache")
	}
	if second.Degraded {
		t.Fatal("backend healed but the answer is still degraded")
	}
	third, err := gw.Predict(context.Background(), row(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Degraded {
		t.Fatalf("healed full answer not cached (cached %v, degraded %v)", third.Cached, third.Degraded)
	}
}

// TestDigestCanonicalization: ±0.0 share a key (they compare equal and
// infer identically); any payload change — value, shape, or model version —
// separates keys.
func TestDigestCanonicalization(t *testing.T) {
	negZero := row(0, 0)
	negZero.RowSlice(0)[0] = -0.0 // math.Copysign(0, -1) spelled explicitly below
	posZero := row(0, 0)
	if digest("v", negZero) != digest("v", posZero) {
		t.Fatal("-0.0 and +0.0 hash differently")
	}
	if digest("v", row(1, 0)) == digest("v", row(2, 0)) {
		t.Fatal("different payloads share a digest")
	}
	if digest("v1", row(1, 0)) == digest("v2", row(1, 0)) {
		t.Fatal("different model versions share a digest")
	}
	wide := tensor.New(1, 4)
	tall := tensor.New(4, 1)
	if digest("v", wide) == digest("v", tall) {
		t.Fatal("1×4 and 4×1 zero tensors share a digest")
	}
}

// TestPredictHTTPCachedField: the client contract — a repeated POST carries
// "cached": true; the first does not carry the field at all.
func TestPredictHTTPCachedField(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16, Coalesce: true})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	body := `{"x": [[0.5, 1, 0]]}`
	post := func() (int, map[string]any) {
		resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var decoded map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, decoded
	}
	code, first := post()
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d", code)
	}
	if _, present := first["cached"]; present {
		t.Fatal(`fresh answer carries "cached"`)
	}
	code, second := post()
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d", code)
	}
	if cached, _ := second["cached"].(bool); !cached {
		t.Fatalf(`repeat answer lacks "cached": true (%v)`, second)
	}
	if be.calls() != 1 {
		t.Fatalf("backend ran %d times for identical posts, want 1", be.calls())
	}
}

// TestConcurrentShapedTraffic hammers the shaped path from many goroutines
// over a small key space — the -race workout for the cache + flight table.
func TestConcurrentShapedTraffic(t *testing.T) {
	be := &countingBackend{}
	gw := New(be, Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 3, CacheSize: 8, CacheTTL: 20 * time.Millisecond, Coalesce: true})
	defer gw.Close()

	const goroutines = 32
	const perG = 25
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				mark := float64(j%6 + 1) // 6 hot keys
				res, err := gw.Predict(context.Background(), row(mark, int(mark)))
				if err != nil {
					errs[i] = err
					return
				}
				if res.Winners[0] != int(mark) {
					errs[i] = errors.New("wrong row scattered back")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c := gw.Counters()
	served := c.Counter("serve.cache.hits").Value() + c.Counter("serve.cache.coalesced").Value()
	if served == 0 {
		t.Fatal("hot-key hammer produced zero cache hits and zero coalesced shares")
	}
	if got := be.calls(); got >= goroutines*perG {
		t.Fatalf("backend ran %d times for %d requests — shaping did nothing", got, goroutines*perG)
	}
}

// TestHotSwapMidFlightSkipsStalePut: a SetModelVersion lands while the
// leader is inside the backend. The purge must win: the leader's cachePut —
// computed under the superseded version — is skipped (counted under
// serve.cache.stale_puts), waiters still get the leader's share, and the
// cache holds no version-A entry afterward. Runs under -race via make
// verify.
func TestHotSwapMidFlightSkipsStalePut(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}, 4), entered: make(chan struct{}, 4)}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, CacheSize: 16, Coalesce: true})
	defer gw.Close()
	gw.SetModelVersion("vA")

	// Seed one resident version-A entry so the purge has something to kill.
	be.gate <- struct{}{}
	if _, err := gw.Predict(context.Background(), row(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-be.entered
	if size, _ := gw.CacheStats(); size != 1 {
		t.Fatalf("seed entry not resident (size %d)", size)
	}

	// Wedge a leader inside the backend under version A.
	x := row(2, 1)
	key := gw.digestFor(x)
	type out struct {
		res Result
		err error
	}
	leaderDone := make(chan out, 1)
	go func() {
		res, err := gw.Predict(context.Background(), x)
		leaderDone <- out{res, err}
	}()
	<-be.entered

	waiterDone := make(chan out, 1)
	go func() {
		res, err := gw.Predict(context.Background(), row(2, 1))
		waiterDone <- out{res, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gw.flightWaiters(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	// The hot swap lands mid-flight: exactly one purge, cache emptied.
	gw.SetModelVersion("vB")
	if got := gw.Counters().Counter("serve.cache.invalidations").Value(); got != 1 {
		t.Fatalf("serve.cache.invalidations = %d, want exactly 1", got)
	}
	if size, _ := gw.CacheStats(); size != 0 {
		t.Fatalf("purge left %d entries resident", size)
	}

	// Release the leader. Its put was computed under vA and must be skipped.
	be.gate <- struct{}{}
	lr := <-leaderDone
	if lr.err != nil {
		t.Fatalf("leader failed across the swap: %v", lr.err)
	}
	wr := <-waiterDone
	if wr.err != nil {
		t.Fatalf("waiter failed across the swap: %v", wr.err)
	}
	if wr.res.Winners[0] != 1 || wr.res.Cached {
		t.Fatalf("waiter share wrong (winner %d, cached %v), want leader's uncached result",
			wr.res.Winners[0], wr.res.Cached)
	}
	if got := gw.Counters().Counter("serve.cache.coalesced").Value(); got != 1 {
		t.Fatalf("serve.cache.coalesced = %d, want 1", got)
	}
	if got := gw.Counters().Counter("serve.cache.stale_puts").Value(); got != 1 {
		t.Fatalf("serve.cache.stale_puts = %d, want 1", got)
	}
	size, stale := gw.CacheStats()
	if size != 0 || stale != 0 {
		t.Fatalf("version-A entry survived the swap (size %d, stale %d)", size, stale)
	}

	// The hit-rate window restarted at the swap: the next lookup is the
	// first of the new window, so the gauge reads 0, not a lifetime blend.
	be.gate <- struct{}{}
	res, err := gw.Predict(context.Background(), row(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-be.entered
	if res.Cached {
		t.Fatal("post-swap request served a stale version-A answer")
	}
	if got := gw.Gauges().Gauge("serve.cache.hit_rate_pct").Value(); got != 0 {
		t.Fatalf("hit_rate_pct = %d after window reset, want 0", got)
	}
}
