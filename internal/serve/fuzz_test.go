package serve

import (
	"math"
	"strings"
	"testing"
)

// Fuzz target for the gateway's HTTP request decoder: ParsePredict faces
// JSON from untrusted clients and must never panic, and everything it
// accepts must satisfy the invariants the batcher depends on (rectangular,
// non-empty, finite, within the row budget). `go test` runs the seed
// corpus; `go test -fuzz=FuzzParsePredict ./internal/serve` explores
// further. The seeds are mirrored into TestParsePredictSeedCorpus
// (seeds_test.go) so the verify target's -run Test path executes them too.

func parsePredictSeeds() []string {
	return []string{
		``,
		`{}`,
		`{"x": []}`,
		`{"x": [[]]}`,                // zero-width row
		`{"x": [[1, 2], []]}`,        // ragged: second row empty
		`{"x": [[1], [2, 3]]}`,       // ragged: second row wider
		`{"x": [[1e999]]}`,           // overflows float64 → +Inf in some decoders
		`{"x": [[1.5, -2.5, 3.25]]}`, // valid single row
		`{"x": [[0]], "timeout_ms": -1}`,
		`{"x": [[0]], "timeout_ms": 250, "priority": "high"}`,
		`{"x": [[0]], "priority": "urgent"}`, // unknown lane
		`{"x": [[0]], "bogus": true}`,        // unknown field
		`{"x": [[0]]} trailing`,              // trailing garbage
		`{"x": "not an array"}`,
		`{"x": [[null]]}`,
		`{"x": [["NaN"]]}`,
		`[[1, 2]]`,                                     // bare array, not an object
		`{"x": [[1],[2],[3],[4],[5],[6],[7],[8],[9]]}`, // over an 8-row budget
	}
}

func checkParsePredict(t *testing.T, body string, maxRows int) {
	t.Helper()
	x, _, timeout, err := ParsePredict(strings.NewReader(body), maxRows)
	if err != nil {
		return
	}
	if x == nil || x.Rank() != 2 {
		t.Fatalf("accepted input decoded to non-matrix tensor: %v", x)
	}
	rows, width := x.Shape[0], x.Shape[1]
	if rows < 1 || width < 1 {
		t.Fatalf("accepted empty tensor %dx%d from %q", rows, width, body)
	}
	if maxRows > 0 && rows > maxRows {
		t.Fatalf("accepted %d rows past budget %d from %q", rows, maxRows, body)
	}
	if len(x.Data) != rows*width {
		t.Fatalf("tensor data length %d != %d*%d", len(x.Data), rows, width)
	}
	for i, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("accepted non-finite value %v at flat index %d from %q", v, i, body)
		}
	}
	if timeout < 0 {
		t.Fatalf("accepted negative timeout %v from %q", timeout, body)
	}
}

func FuzzParsePredict(f *testing.F) {
	for _, seed := range parsePredictSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body string) {
		checkParsePredict(t, body, 8)
	})
}
