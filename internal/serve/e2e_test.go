package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/cluster"
	"github.com/teamnet/teamnet/internal/nn"
	"github.com/teamnet/teamnet/internal/tensor"
)

// TestGatewayOverRealMaster drives the gateway end to end: concurrent
// single-row predictions through a real cluster.Master and a real
// snapshot-serving worker over loopback TCP, checking every caller's answer is bit-identical
// to what a direct per-row Master.Infer returns — coalescing and scattering
// must be invisible to correctness.
func TestGatewayOverRealMaster(t *testing.T) {
	spec := nn.Spec{Kind: "mlp", MLP: &nn.MLPSpec{Label: "e2e", Input: 16, Width: 32, Layers: 2, Classes: 5}}
	expert, err := spec.Build(tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	worker := cluster.NewWorker(expert, 1)
	addr, err := worker.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	local, err := spec.Build(tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	master := cluster.NewMaster(local, 5)
	defer master.Close()
	master.SetTimeout(5 * time.Second)
	if err := master.Connect(addr); err != nil {
		t.Fatal(err)
	}

	gw := New(master, Config{MaxBatch: 8, MaxLinger: 2 * time.Millisecond, Workers: 2})
	defer gw.Close()

	const n = 24
	rng := tensor.NewRNG(9)
	inputs := make([]*tensor.Tensor, n)
	wantProbs := make([]*tensor.Tensor, n)
	wantWinners := make([]int, n)
	for i := range inputs {
		inputs[i] = rng.Randn(1, 16)
		probs, winners, err := master.Infer(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		wantProbs[i] = probs
		wantWinners[i] = winners[0]
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = gw.Predict(context.Background(), inputs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Winners[0] != wantWinners[i] {
			t.Errorf("request %d: winner %d via gateway, %d direct", i, results[i].Winners[0], wantWinners[i])
		}
		if !results[i].Probs.AllClose(wantProbs[i], 1e-9) {
			t.Errorf("request %d: gateway probs differ from direct inference", i)
		}
		wantEnt := 0.0
		for _, p := range wantProbs[i].RowSlice(0) {
			if p > 0 {
				wantEnt -= p * math.Log(p)
			}
		}
		if math.Abs(results[i].Entropy[0]-wantEnt) > 1e-6 {
			t.Errorf("request %d: entropy %v, want %v", i, results[i].Entropy[0], wantEnt)
		}
	}
	if rows := gw.Counters().Counter("serve.batched_rows").Value(); rows != n {
		t.Fatalf("serve.batched_rows = %d, want %d", rows, n)
	}
}
