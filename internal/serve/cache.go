package serve

// Demand shaping: the content-addressed response cache and the
// duplicate-request coalescer (singleflight). Real edge traffic is heavily
// skewed — repeated sensor frames, hot queries — and before this layer every
// byte-identical duplicate paid a full ensemble inference. Two mechanisms
// turn repeated demand into cheap demand:
//
//   - the cache: a bounded LRU keyed by a SHA-256 digest of the canonicalized
//     feature tensor plus the loaded model version, with an optional TTL.
//     A hit answers in microseconds without touching the admission queue.
//     Degraded (partial-ensemble) answers are never cached: they reflect a
//     transient fleet state, and serving them later would replay an outage.
//   - singleflight: N identical in-flight tensors cost exactly one queued
//     inference. The first becomes the leader and rides the normal admission
//     path; the rest wait on the leader's flight and share its (cloned)
//     result. A waiter whose own deadline fires gets its context error — a
//     504, never a late or stale share — and a waiter outliving a leader
//     that died of the leader's own deadline retries as a fresh leader.
//
// SetModelVersion invalidates the whole cache (the version participates in
// key derivation, and the store is purged eagerly), which is how a snapshot
// hot-swap must announce itself. Everything is counted: serve.cache.{hits,
// misses,expired,evictions,coalesced,invalidations} plus the
// serve.cache.hit_rate_pct and serve.cache.size gauges.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
)

// cacheKey is the content address of one request: a SHA-256 digest over the
// model version, the tensor shape, and every canonicalized element.
type cacheKey [sha256.Size]byte

// canonicalNaN is the single bit pattern all NaN payloads collapse to, so a
// request's digest does not depend on which NaN a caller produced. (The
// HTTP front door rejects non-finite values outright; this guards direct
// Go callers.)
var canonicalNaN = math.Float64bits(math.NaN())

// digest derives x's content address under version. Canonicalization:
// -0.0 hashes as +0.0 (they are ==, and every kernel treats them alike)
// and NaNs collapse to one pattern.
func digest(version string, x *tensor.Tensor) cacheKey {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(version)))
	h.Write(buf[:])
	h.Write([]byte(version))
	binary.LittleEndian.PutUint64(buf[:], uint64(x.Shape[0]))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(x.Shape[1]))
	h.Write(buf[:])
	for _, v := range x.Data {
		bits := math.Float64bits(v)
		if v == 0 {
			bits = 0 // -0.0 → +0.0
		} else if bits&^(1<<63) > 0x7FF0000000000000 {
			bits = canonicalNaN
		}
		binary.LittleEndian.PutUint64(buf[:], bits)
		h.Write(buf[:])
	}
	var key cacheKey
	h.Sum(key[:0])
	return key
}

// cloneResult deep-copies a Result so cached values and coalesced shares
// never alias a caller's (mutable) view.
func cloneResult(r Result) Result {
	out := r
	if r.Probs != nil {
		out.Probs = tensor.New(r.Probs.Shape...)
		copy(out.Probs.Data, r.Probs.Data)
	}
	out.Winners = append([]int(nil), r.Winners...)
	out.Entropy = append([]float64(nil), r.Entropy...)
	return out
}

// cacheEntry is one cached response with its expiry (zero = never) and the
// model version it was computed under.
type cacheEntry struct {
	key     cacheKey
	version string
	res     Result
	expires time.Time
}

// responseCache is the bounded LRU+TTL store. It is a pure container: the
// gateway owns all metric accounting, the cache just reports what happened.
// Safe for concurrent use. The store tracks the current model version so a
// put computed under a superseded version can be rejected under the same
// lock that serialized the purge — without this, a leader that started
// before a hot swap re-inserts an entry keyed under the old version: dead
// weight that can never be looked up again (new digests use the new
// version) but still occupies LRU capacity until evicted.
type responseCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	version string
	ll      *list.List // front = most recently used
	items   map[cacheKey]*list.Element
}

func newResponseCache(max int, ttl time.Duration) *responseCache {
	return &responseCache{
		max:   max,
		ttl:   ttl,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element, max),
	}
}

// get returns a deep copy of the entry under key. expired reports a present
// -but-stale entry (removed on the way out); ok is false for both absent and
// expired.
func (c *responseCache) get(key cacheKey, now time.Time) (res Result, ok, expired bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		return Result{}, false, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && now.After(ent.expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		return Result{}, false, true
	}
	c.ll.MoveToFront(el)
	return cloneResult(ent.res), true, false
}

// put stores a deep copy of res under key, provided version still matches
// the store's current version. stale reports a rejected put (the version
// moved between digest time and now); evicted is how many entries were
// dropped to stay within the bound.
func (c *responseCache) put(key cacheKey, version string, res Result, now time.Time) (evicted int, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.version {
		return 0, true
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = now.Add(c.ttl)
	}
	if el, found := c.items[key]; found {
		ent := el.Value.(*cacheEntry)
		ent.version = version
		ent.res = cloneResult(res)
		ent.expires = expires
		c.ll.MoveToFront(el)
		return 0, false
	}
	el := c.ll.PushFront(&cacheEntry{key: key, version: version, res: cloneResult(res), expires: expires})
	c.items[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted, false
}

// setVersion records the model version the store serves under. The first
// call labels the version the gateway started with; a later change is a
// swap: the store purges under the same lock, so a concurrent put computed
// under the old version is rejected no matter how the goroutines interleave.
// swapped reports whether a purge happened; purged is how many entries died.
func (c *responseCache) setVersion(v string) (purged int, swapped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.version
	c.version = v
	if prev == v || prev == "" {
		return 0, false
	}
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element, c.max)
	return n, true
}

// stale counts live entries stored under a version other than the current
// one. With the versioned-put guard this is always zero; benches and tests
// assert it to pin the invariant.
func (c *responseCache) stale() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).version != c.version {
			n++
		}
	}
	return n
}

// len reports the current entry count.
func (c *responseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-flight leader inference plus everyone waiting on it.
// done closes exactly once, after res/err are written.
type flight struct {
	done    chan struct{}
	res     Result
	err     error
	waiters int64 // joined non-leaders; read under the gateway's flightMu
}

// SetModelVersion records the identity of the loaded model/snapshot and
// invalidates every cached response: the version participates in cache-key
// derivation, and the store is purged eagerly so stale answers cannot
// outlive a hot swap even through a hash collision. Call it whenever the
// serving snapshot changes (teamnet-serve derives it from the team bundle's
// content hash at startup).
func (g *Gateway) SetModelVersion(v string) {
	g.modelMu.Lock()
	g.modelVersion = v
	g.modelMu.Unlock()
	if g.cache == nil {
		return
	}
	// The first call labels the model the gateway started with; only a
	// later change is a swap worth counting and purging for. The cache
	// tracks the version itself so the purge and the version change are
	// one atomic step w.r.t. concurrent versioned puts.
	if _, swapped := g.cache.setVersion(v); !swapped {
		return
	}
	g.counters.Counter("serve.cache.invalidations").Inc()
	// A swap starts a fresh measurement window: the lifetime ratio would
	// blend old-model traffic in and hide the post-swap cold cache.
	g.cacheHits.Store(0)
	g.cacheLookups.Store(0)
	g.gauges.Gauge("serve.cache.hit_rate_pct").Set(0)
	g.gauges.Gauge("serve.cache.size").Set(int64(g.cache.len()))
}

// CacheStats reports the cache's live entry count and how many of those
// entries were stored under a version other than the current one. stale is
// always zero while the versioned-put guard holds; the fleet bench asserts
// it after every scripted hot-swap.
func (g *Gateway) CacheStats() (size, stale int) {
	if g.cache == nil {
		return 0, 0
	}
	return g.cache.len(), g.cache.stale()
}

// ModelVersion returns the version label the cache keys are derived under.
func (g *Gateway) ModelVersion() string {
	g.modelMu.RLock()
	defer g.modelMu.RUnlock()
	return g.modelVersion
}

// shaped reports whether the demand-shaping layer is in the request path.
func (g *Gateway) shaped() bool { return g.cache != nil || g.cfg.Coalesce }

// digestFor computes the request's content address under the current model
// version.
func (g *Gateway) digestFor(x *tensor.Tensor) cacheKey {
	return digest(g.ModelVersion(), x)
}

// cacheGet is the counted lookup: it maintains the hit/miss/expired
// counters, the hit-rate gauge, and the size gauge.
func (g *Gateway) cacheGet(key cacheKey) (Result, bool) {
	if g.cache == nil {
		return Result{}, false
	}
	res, ok, expired := g.cache.get(key, time.Now())
	g.cacheLookups.Add(1)
	if ok {
		g.cacheHits.Add(1)
		g.counters.Counter("serve.cache.hits").Inc()
	} else {
		g.counters.Counter("serve.cache.misses").Inc()
		if expired {
			g.counters.Counter("serve.cache.expired").Inc()
		}
	}
	// The window counters reset on invalidation, so a racing reset can
	// leave lookups at zero (guard the division) or momentarily behind
	// hits (clamp the ratio).
	if lookups := g.cacheLookups.Load(); lookups > 0 {
		pct := g.cacheHits.Load() * 100 / lookups
		if pct > 100 {
			pct = 100
		}
		g.gauges.Gauge("serve.cache.hit_rate_pct").Set(pct)
	}
	g.gauges.Gauge("serve.cache.size").Set(int64(g.cache.len()))
	return res, ok
}

// cachePut stores a served result, counting evictions. Degraded answers and
// errors never reach here. version is the model version the result was
// computed under; if a hot swap landed since, the put is skipped and
// counted as serve.cache.stale_puts instead of inserting dead weight.
func (g *Gateway) cachePut(key cacheKey, version string, res Result) {
	if g.cache == nil {
		return
	}
	evicted, stale := g.cache.put(key, version, res, time.Now())
	if stale {
		g.counters.Counter("serve.cache.stale_puts").Inc()
		return
	}
	if evicted > 0 {
		g.counters.Counter("serve.cache.evictions").Add(int64(evicted))
	}
	g.gauges.Gauge("serve.cache.size").Set(int64(g.cache.len()))
}

// joinFlight either registers the caller as the leader for key (creating
// the flight) or joins an existing flight as a waiter.
func (g *Gateway) joinFlight(key cacheKey) (fl *flight, leader bool) {
	g.flightMu.Lock()
	defer g.flightMu.Unlock()
	if fl, ok := g.flights[key]; ok {
		fl.waiters++
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	g.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome to every waiter and retires
// the flight, so later identical requests start fresh (or hit the cache).
func (g *Gateway) finishFlight(key cacheKey, fl *flight, res Result, err error) {
	g.flightMu.Lock()
	delete(g.flights, key)
	g.flightMu.Unlock()
	fl.res = res
	fl.err = err
	close(fl.done)
}

// flightWaiters reports how many callers are coalesced behind key's leader
// (tests use this to sequence deterministically).
func (g *Gateway) flightWaiters(key cacheKey) int64 {
	g.flightMu.Lock()
	defer g.flightMu.Unlock()
	if fl, ok := g.flights[key]; ok {
		return fl.waiters
	}
	return 0
}

// isContextErr reports a leader outcome that was the leader's own doing
// (its deadline or cancellation) rather than a verdict on the work.
func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// predictShaped is the demand-shaped request path: cache lookup, then
// singleflight, then the ordinary admission queue for leaders. opts ride
// with the leader; waiters inherit the leader's outcome.
func (g *Gateway) predictShaped(ctx context.Context, x *tensor.Tensor, opts Options) (Result, error) {
	// The version is captured alongside the key: if a hot swap lands while
	// the leader is in flight, the put below is rejected instead of
	// re-inserting an entry keyed under the superseded version.
	version := g.ModelVersion()
	key := digest(version, x)
	start := time.Now()
	if res, ok := g.cacheGet(key); ok {
		res.Cached = true
		e2e := time.Since(start)
		g.hists.Observe("serve.e2e", e2e)
		g.sloFinished(e2e, nil)
		return res, nil
	}
	for {
		fl, leader := g.joinFlight(key)
		if leader {
			res, err := g.predictQueued(ctx, x, opts)
			if err == nil && !res.Degraded {
				g.cachePut(key, version, res)
			}
			g.finishFlight(key, fl, res, err)
			return res, err
		}
		select {
		case <-fl.done:
			if fl.err != nil {
				if isContextErr(fl.err) && ctx.Err() == nil {
					// The leader died of its own deadline; this waiter is
					// still alive, so it retries — typically as the new
					// leader.
					continue
				}
				// Shared verdicts (backend errors, shed at admission)
				// propagate: N duplicates cost one admission attempt too.
				return Result{}, fl.err
			}
			g.counters.Counter("serve.cache.coalesced").Inc()
			res := cloneResult(fl.res)
			if res.Degraded {
				g.counters.Counter("serve.degraded").Inc()
			}
			e2e := time.Since(start)
			g.hists.Observe("serve.e2e", e2e)
			g.sloFinished(e2e, nil)
			return res, nil
		case <-ctx.Done():
			// The waiter's own deadline fired first: it gets its context
			// error (HTTP 504), never a late share scattered after the fact.
			g.counters.Counter("serve.timeouts").Inc()
			g.hists.Observe("serve.e2e", time.Since(start))
			g.sloBurned()
			return Result{}, ctx.Err()
		case <-g.quit:
			return Result{}, ErrClosed
		}
	}
}
