package serve

import (
	"strings"
	"testing"
	"time"
)

// The fuzz target in fuzz_test.go only executes its seed corpus when the
// fuzz engine runs it (plain `go test` with no -run filter, or -fuzz).
// This table test wires the same seeds into the ordinary test set so
// `go test -short -run Test` — the verify target's fast path — still
// exercises the HTTP decoder on every historical crash seed.

func TestParsePredictSeedCorpus(t *testing.T) {
	for i, seed := range parsePredictSeeds() {
		i, seed := i, seed
		t.Run("", func(t *testing.T) {
			_ = i
			checkParsePredict(t, seed, 8)
		})
	}
}

// TestParsePredictAcceptance pins the decoder's verdict on each seed class:
// the valid shapes decode, each malformed class is rejected.
func TestParsePredictAcceptance(t *testing.T) {
	reject := []string{
		``,
		`{}`,
		`{"x": []}`,
		`{"x": [[]]}`,
		`{"x": [[1, 2], []]}`,
		`{"x": [[1], [2, 3]]}`,
		`{"x": [[1e999]]}`,
		`{"x": [[0]], "timeout_ms": -1}`,
		`{"x": [[0]], "priority": "urgent"}`,
		`{"x": [[0]], "bogus": true}`,
		`{"x": [[0]]} trailing`,
		`{"x": "not an array"}`,
		`{"x": [["NaN"]]}`,
		`[[1, 2]]`,
		`{"x": [[1],[2],[3],[4],[5],[6],[7],[8],[9]]}`,
	}
	for _, body := range reject {
		if _, _, _, err := ParsePredict(strings.NewReader(body), 8); err == nil {
			t.Errorf("malformed body accepted: %q", body)
		}
	}

	x, opts, timeout, err := ParsePredict(strings.NewReader(
		`{"x": [[1.5, -2.5], [0, 3.25]], "timeout_ms": 250, "priority": "high"}`), 8)
	if err != nil {
		t.Fatal(err)
	}
	if x.Shape[0] != 2 || x.Shape[1] != 2 {
		t.Fatalf("shape %v, want [2 2]", x.Shape)
	}
	if x.RowSlice(1)[1] != 3.25 {
		t.Fatalf("x[1][1] = %v, want 3.25", x.RowSlice(1)[1])
	}
	if opts.Priority != PriorityHigh {
		t.Fatalf("priority %v, want high", opts.Priority)
	}
	if timeout != 250*time.Millisecond {
		t.Fatalf("timeout %v, want 250ms", timeout)
	}

	// `{"x": [[null]]}` decodes null as 0 in Go's JSON — 0 is a legitimate
	// feature value, so acceptance is fine; what matters is it cannot smuggle
	// a NaN. Document the actual verdict either way.
	if x, _, _, err := ParsePredict(strings.NewReader(`{"x": [[null]]}`), 8); err == nil {
		if v := x.RowSlice(0)[0]; v != 0 {
			t.Fatalf("null decoded to %v, want 0", v)
		}
	}
}
