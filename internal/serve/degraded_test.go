package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/teamnet/teamnet/internal/tensor"
)

// Degraded-mode, brownout, and Retry-After tests: the gateway half of the
// SLO-defense layer. A partial ensemble answers with quorum metadata
// instead of a 5xx, the brownout controller tightens the batcher when the
// SLO burn rises, and rejected clients get a drain-rate-derived backoff
// hint. All run under -race via the verify target.

// quorumBackend implements DegradedBackend over the echo fake: the quorum
// path reports a scripted live/total and counts which path served.
type quorumBackend struct {
	echo        echoBackend
	live, total int
	soft        atomic.Int64 // last soft deadline seen, ns
	quorumCalls atomic.Int64
	strictCalls atomic.Int64
}

func (b *quorumBackend) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	b.strictCalls.Add(1)
	return b.echo.InferContext(ctx, x)
}

func (b *quorumBackend) InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (*tensor.Tensor, []int, int, int, error) {
	b.quorumCalls.Add(1)
	b.soft.Store(int64(soft))
	probs, winners, err := b.echo.InferContext(ctx, x)
	return probs, winners, b.live, b.total, err
}

// TestDegradedScatter: with Config.Degraded set and the backend reporting a
// thinned ensemble, every caller's Result carries the degraded flag and the
// quorum counts, and serve.degraded counts one per degraded request.
func TestDegradedScatter(t *testing.T) {
	be := &quorumBackend{live: 2, total: 3}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Degraded: true})
	defer gw.Close()

	res, err := gw.Predict(context.Background(), row(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Live != 2 || res.Nodes != 3 {
		t.Fatalf("Result = degraded:%v live:%d nodes:%d, want degraded 2/3", res.Degraded, res.Live, res.Nodes)
	}
	if be.quorumCalls.Load() == 0 || be.strictCalls.Load() != 0 {
		t.Fatalf("dispatch took the wrong path: quorum=%d strict=%d", be.quorumCalls.Load(), be.strictCalls.Load())
	}
	if got := gw.Counters().Counter("serve.degraded").Value(); got != 1 {
		t.Fatalf("serve.degraded = %d, want 1", got)
	}

	// Full quorum is not degraded.
	be.live, be.total = 3, 3
	res, err = gw.Predict(context.Background(), row(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("full-quorum answer flagged degraded")
	}
	if got := gw.Counters().Counter("serve.degraded").Value(); got != 1 {
		t.Fatalf("serve.degraded moved to %d on a full answer", got)
	}
}

// TestDegradedOffUsesStrictPath: without the opt-in the gateway ignores the
// DegradedBackend capability entirely.
func TestDegradedOffUsesStrictPath(t *testing.T) {
	be := &quorumBackend{live: 1, total: 3}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond})
	defer gw.Close()
	res, err := gw.Predict(context.Background(), row(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || be.quorumCalls.Load() != 0 || be.strictCalls.Load() == 0 {
		t.Fatalf("Degraded:false still used the quorum path (quorum=%d strict=%d)", be.quorumCalls.Load(), be.strictCalls.Load())
	}
}

// TestQuorumSoftFromDeadline: the soft deadline handed to the backend is a
// strict fraction of the batch's remaining time, so the partial answer is
// assembled before the caller gives up — and absent a deadline it is zero.
func TestQuorumSoftFromDeadline(t *testing.T) {
	be := &quorumBackend{live: 1, total: 1}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Degraded: true})
	defer gw.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := gw.Predict(ctx, row(1, 0)); err != nil {
		t.Fatal(err)
	}
	soft := time.Duration(be.soft.Load())
	if soft <= 0 || soft >= time.Second {
		t.Fatalf("soft deadline %v, want in (0, 1s) for a 1s caller deadline", soft)
	}

	if _, err := gw.Predict(context.Background(), row(2, 0)); err != nil {
		t.Fatal(err)
	}
	if soft := time.Duration(be.soft.Load()); soft != 0 {
		t.Fatalf("soft deadline %v without a caller deadline, want 0", soft)
	}
}

// TestHTTPDegradedResponse: the JSON front end surfaces the degraded flag
// and quorum block, and omits both on full answers.
func TestHTTPDegradedResponse(t *testing.T) {
	be := &quorumBackend{live: 2, total: 3}
	gw := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond, Degraded: true})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	body := `{"x": [[1, 0, 0]]}`
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded || pr.Quorum == nil || pr.Quorum.Live != 2 || pr.Quorum.Nodes != 3 {
		t.Fatalf("degraded JSON = %+v, want degraded with quorum 2/3", pr)
	}

	be.live, be.total = 3, 3
	resp2, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var full map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if _, present := full["degraded"]; present {
		t.Fatal("full answer carried a degraded field")
	}
	if _, present := full["quorum"]; present {
		t.Fatal("full answer carried a quorum block")
	}
}

// TestHTTPRetryAfterOnShed: a 429 must carry a Retry-After header of at
// least one whole second so naive clients back off instead of hammering.
func TestHTTPRetryAfterOnShed(t *testing.T) {
	be := &gatedBackend{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	gw := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueSize: 1, Workers: 1})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	// Wedge the worker on one request, then fill the one-slot queue.
	errc := make(chan error, 8)
	post := func() {
		resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"x": [[1, 0, 0]], "timeout_ms": 30000}`))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}
	go post()
	<-be.entered // the first request is mid-inference: the worker is busy
	go post()    // occupies the queue slot

	// Probe until the shed: each probe carries its own short deadline so a
	// probe that slips into the queue instead of shedding cannot block the
	// loop — it 504s and then occupies the lane for the next probe to trip
	// over.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"x": [[1, 0, 0]], "timeout_ms": 300}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Fatalf("Retry-After = %q, want whole seconds ≥ 1", ra)
			}
			var eresp errorResponse
			// Re-check the JSON error body contract on a fresh shed.
			resp2, err2 := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"x": [[1, 0, 0]], "timeout_ms": 300}`))
			if err2 != nil {
				t.Fatal(err2)
			}
			if resp2.StatusCode == http.StatusTooManyRequests {
				if err := json.NewDecoder(resp2.Body).Decode(&eresp); err != nil || eresp.Error == "" {
					t.Fatalf("429 body not a JSON error object: %v", err)
				}
			}
			resp2.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("queue never filled: no 429 observed")
		}
	}
	close(be.gate) // unwedge and let the two pending requests finish
	<-errc
	<-errc
}

// TestRetryAfterEstimate: the estimate is depth over the smoothed drain
// rate, clamped into [1s, 30s], with a 1s floor when nothing has drained.
func TestRetryAfterEstimate(t *testing.T) {
	gw := New(&echoBackend{}, Config{})
	defer gw.Close()

	if got := gw.RetryAfter(); got != time.Second {
		t.Fatalf("cold RetryAfter = %v, want the 1s floor", got)
	}

	// Pin the internals: 50 queued, draining at 10/s → 5s.
	gw.gauges.Gauge("serve.queue_depth").Set(50)
	gw.drainMu.Lock()
	gw.drainRate = 10
	gw.drainT = time.Now()
	gw.drainMu.Unlock()
	if got := gw.RetryAfter(); got != 5*time.Second {
		t.Fatalf("RetryAfter = %v for depth 50 at 10/s, want 5s", got)
	}

	// A glacial drain clamps at 30s.
	gw.drainMu.Lock()
	gw.drainRate = 0.01
	gw.drainT = time.Now()
	gw.drainMu.Unlock()
	if got := gw.RetryAfter(); got != 30*time.Second {
		t.Fatalf("RetryAfter = %v, want the 30s ceiling", got)
	}
	gw.gauges.Gauge("serve.queue_depth").Set(0)
}

// TestBrownoutTightensAndRelaxes: a burst of SLO-missing traffic must step
// the controller's level up (shrinking the effective linger and queue cap),
// and quiet windows must walk it back down to zero.
func TestBrownoutTightensAndRelaxes(t *testing.T) {
	be := &backendDelay{d: 20 * time.Millisecond}
	gw := New(be, Config{
		MaxBatch:     4,
		MaxLinger:    8 * time.Millisecond,
		QueueSize:    64,
		Workers:      4,
		SLOTarget:    time.Millisecond, // everything misses: burn = 1
		BrownoutBurn: 0.1,
	})
	defer gw.Close()

	// Keep >=20 finished-per-window flowing until the controller reacts.
	deadline := time.Now().Add(10 * time.Second)
	for gw.gauges.Gauge("serve.brownout_level").Value() == 0 {
		done := make(chan struct{}, 8)
		for i := 0; i < 8; i++ {
			go func() {
				gw.Predict(context.Background(), row(1, 0)) //nolint:errcheck
				done <- struct{}{}
			}()
		}
		for i := 0; i < 8; i++ {
			<-done
		}
		if time.Now().After(deadline) {
			t.Fatal("brownout level never rose under 100% SLO burn")
		}
	}
	if got := gw.Counters().Counter("serve.brownout.tightened").Value(); got == 0 {
		t.Fatal("tightening left no counter trace")
	}
	level := gw.level.Load()
	if eff := gw.effQueue.Load(); eff != int64(64>>level) {
		t.Fatalf("effective queue cap %d at level %d, want %d", eff, level, 64>>level)
	}
	if eff := gw.effLinger.Load(); eff != int64(8*time.Millisecond)>>level {
		t.Fatalf("effective linger %d at level %d", eff, level)
	}

	// Silence: with no evidence the controller must relax back to zero.
	deadline = time.Now().Add(10 * time.Second)
	for gw.gauges.Gauge("serve.brownout_level").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("brownout level stuck at %d after traffic stopped", gw.gauges.Gauge("serve.brownout_level").Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := gw.Counters().Counter("serve.brownout.relaxed").Value(); got == 0 {
		t.Fatal("relaxation left no counter trace")
	}
	if eff := gw.effQueue.Load(); eff != 64 {
		t.Fatalf("effective queue cap %d after full relax, want 64", eff)
	}
}

// backendDelay answers correctly but slowly — SLO-missing by construction.
type backendDelay struct {
	d    time.Duration
	echo echoBackend
}

func (b *backendDelay) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, []int, error) {
	select {
	case <-time.After(b.d):
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	return b.echo.InferContext(ctx, x)
}
