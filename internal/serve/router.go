package serve

// Router fans one gateway out across many masters: the horizontal tier of
// the serving fabric. It is itself a Backend (and DegradedBackend), so a
// Gateway stacks on top unchanged — admission, batching, caching and
// coalescing all ride over whichever master the router picks per dispatch.
//
// Selection is least-loaded: each target carries a live in-flight count and
// an rtt EWMA, and the router picks the target minimizing
// (inflight+1)·ewma — cheap power-of-all-choices that sends traffic where
// queues are short and links are fast, and adapts within a few round trips
// when a master slows down. A dispatch error puts the target in a short
// cooldown (it keeps serving as last resort when every target is cooling)
// and fails over to the next-best target once, so one dead master costs a
// request at most one extra hop, not an error. Membership updates arrive
// via Upsert/Remove — the teamnet-serve announce loop feeds discovered
// masters in and expires vanished ones.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/teamnet/teamnet/internal/metrics"
	"github.com/teamnet/teamnet/internal/tensor"
)

// routeEWMASeed is the optimistic rtt a fresh target starts at, so new
// capacity attracts traffic immediately and earns a real measurement.
const routeEWMASeed = time.Millisecond

// routeTarget is one master behind the router.
type routeTarget struct {
	name     string
	be       Backend
	inflight atomic.Int64
	ewmaNs   atomic.Int64 // per-request latency EWMA
	coolNs   atomic.Int64 // unix nano until which the target is cooling
}

// score is the least-loaded metric: queue depth times expected latency.
func (t *routeTarget) score() int64 {
	ewma := t.ewmaNs.Load()
	if ewma <= 0 {
		ewma = int64(routeEWMASeed)
	}
	return (t.inflight.Load() + 1) * ewma
}

func (t *routeTarget) cooling(now int64) bool { return t.coolNs.Load() > now }

// observe folds one measured round trip into the EWMA (α = 1/4).
func (t *routeTarget) observe(d time.Duration) {
	prev := t.ewmaNs.Load()
	if prev <= 0 {
		t.ewmaNs.Store(int64(d))
		return
	}
	t.ewmaNs.Store(prev + (int64(d)-prev)/4)
}

// Router dispatches inferences across a mutable set of Backend targets.
type Router struct {
	cooldown time.Duration
	counters *metrics.CounterSet
	gauges   *metrics.GaugeSet

	mu      sync.Mutex
	targets []*routeTarget
}

// NewRouter returns an empty router. cooldown is how long a target sits out
// after a dispatch error (0 = 300ms default); add targets with Upsert.
func NewRouter(cooldown time.Duration) *Router {
	if cooldown <= 0 {
		cooldown = 300 * time.Millisecond
	}
	return &Router{
		cooldown: cooldown,
		counters: metrics.NewCounterSet(),
		gauges:   metrics.NewGaugeSet(),
	}
}

// Counters exposes "serve.route.dispatched", "serve.route.failover",
// "serve.route.errors" and "serve.route.cooldowns".
func (r *Router) Counters() *metrics.CounterSet { return r.counters }

// Gauges exposes "serve.route.targets".
func (r *Router) Gauges() *metrics.GaugeSet { return r.gauges }

// Upsert adds a routing target (or replaces the backend under an existing
// name, keeping its load history). The name is the routing identity —
// typically the master's fabric address.
func (r *Router) Upsert(name string, be Backend) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.targets {
		if t.name == name {
			t.be = be
			return
		}
	}
	r.targets = append(r.targets, &routeTarget{name: name, be: be})
	r.gauges.Gauge("serve.route.targets").Set(int64(len(r.targets)))
}

// Remove drops a target (membership expiry). Unknown names are a no-op.
func (r *Router) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range r.targets {
		if t.name == name {
			r.targets = append(r.targets[:i], r.targets[i+1:]...)
			break
		}
	}
	r.gauges.Gauge("serve.route.targets").Set(int64(len(r.targets)))
}

// Targets returns the current target names, in routing order.
func (r *Router) Targets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.targets))
	for i, t := range r.targets {
		out[i] = t.name
	}
	return out
}

// pick returns up to want distinct targets, best score first. Cooling
// targets rank behind healthy ones instead of vanishing, so a fleet that is
// entirely cooling still serves (degraded beats down).
func (r *Router) pick(want int) []*routeTarget {
	now := time.Now().UnixNano()
	r.mu.Lock()
	candidates := append([]*routeTarget(nil), r.targets...)
	r.mu.Unlock()
	if len(candidates) == 0 {
		return nil
	}
	// Selection-sort the handful of targets: healthy before cooling, then
	// by score. Fleets are small (tens of masters); no heap needed.
	less := func(a, b *routeTarget) bool {
		ac, bc := a.cooling(now), b.cooling(now)
		if ac != bc {
			return !ac
		}
		return a.score() < b.score()
	}
	for i := 0; i < len(candidates); i++ {
		best := i
		for j := i + 1; j < len(candidates); j++ {
			if less(candidates[j], candidates[best]) {
				best = j
			}
		}
		candidates[i], candidates[best] = candidates[best], candidates[i]
	}
	if len(candidates) > want {
		candidates = candidates[:want]
	}
	return candidates
}

// errNoTargets is returned when the router has no masters to route to.
var errNoTargets = fmt.Errorf("serve: router has no targets")

// dispatch runs fn against the best target, failing over to the runner-up
// once when the best errors (its cooldown starts immediately). A ctx error
// is the caller's verdict, not the target's — no cooldown, no failover.
func (r *Router) dispatch(ctx context.Context, fn func(t *routeTarget) error) error {
	picks := r.pick(2)
	if len(picks) == 0 {
		return errNoTargets
	}
	var lastErr error
	for i, t := range picks {
		if i > 0 {
			r.counters.Counter("serve.route.failover").Inc()
		}
		r.counters.Counter("serve.route.dispatched").Inc()
		t.inflight.Add(1)
		start := time.Now()
		err := fn(t)
		t.inflight.Add(-1)
		if err == nil {
			t.observe(time.Since(start))
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		r.counters.Counter("serve.route.errors").Inc()
		r.counters.Counter("serve.route.cooldowns").Inc()
		t.coolNs.Store(time.Now().Add(r.cooldown).UnixNano())
		lastErr = err
	}
	return lastErr
}

// InferContext routes one strict inference (Backend contract).
func (r *Router) InferContext(ctx context.Context, x *tensor.Tensor) (probs *tensor.Tensor, winners []int, err error) {
	derr := r.dispatch(ctx, func(t *routeTarget) error {
		probs, winners, err = t.be.InferContext(ctx, x)
		return err
	})
	if derr != nil {
		return nil, nil, derr
	}
	return probs, winners, nil
}

// InferQuorumContext routes one partial-quorum inference (DegradedBackend
// contract). A target without quorum support serves strictly — live==total.
func (r *Router) InferQuorumContext(ctx context.Context, x *tensor.Tensor, soft time.Duration) (probs *tensor.Tensor, winners []int, live, total int, err error) {
	derr := r.dispatch(ctx, func(t *routeTarget) error {
		if db, ok := t.be.(DegradedBackend); ok {
			probs, winners, live, total, err = db.InferQuorumContext(ctx, x, soft)
			return err
		}
		probs, winners, err = t.be.InferContext(ctx, x)
		if err == nil {
			live, total = 1, 1
		}
		return err
	})
	if derr != nil {
		return nil, nil, 0, 0, derr
	}
	return probs, winners, live, total, nil
}
