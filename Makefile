# Build, test and verification entry points. `make verify` is the
# robustness gate: vet plus the failure-path packages (cluster runtime,
# transport, chaos proxy) under the race detector — the chaos-driven
# recovery tests only count if they pass with -race.

GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The short run keeps the full-suite half fast while still executing the
# transport fuzz seed corpora (wired into Test* functions) and every unit
# test; the race half hammers the self-healing runtime.
verify:
	$(GO) vet ./...
	$(GO) test -short ./...
	$(GO) test -race -count=1 ./internal/cluster/... ./internal/transport/... ./internal/chaos/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
