# Build, test and verification entry points. `make verify` is the
# robustness gate: formatting, vet, docs, plus the failure-path packages
# (cluster runtime, transport, chaos proxy, trace) under the race detector —
# the chaos-driven recovery tests only count if they pass with -race.

GO ?= go

.PHONY: build test verify fmt-check docs linkcheck bench bench-throughput bench-serve bench-soak bench-forward bench-cache bench-fleet bench-split bench-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt -l prints offending files; any output fails the gate.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# docs fails if any internal package lacks package-level godoc.
docs:
	$(GO) run ./cmd/teamnet-doccheck ./internal

# linkcheck fails on broken relative links or anchors in the documentation
# set (external http(s) links are not fetched).
linkcheck:
	$(GO) run ./cmd/teamnet-linkcheck README.md DESIGN.md docs/*.md

# The short run keeps the full-suite half fast while still executing the
# transport fuzz seed corpora (wired into Test* functions) and every unit
# test; the race half hammers the self-healing runtime.
verify: fmt-check docs
	$(GO) vet ./...
	$(GO) test -short ./...
	$(GO) test -race -count=1 ./internal/cluster/... ./internal/transport/... ./internal/chaos/... ./internal/trace/... ./internal/serve/... ./internal/nn/... ./internal/tensor/... ./internal/split/...
	$(GO) test -race -short -count=1 ./internal/bench/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Closed-loop serial-vs-mux throughput comparison against a real
# snapshot-serving worker over loopback; the JSON artifact records the
# pipelining speedup (see docs/OPERATIONS.md).
bench-throughput:
	$(GO) run ./cmd/teamnet-bench -throughput -clients 8 -duration 3s -out BENCH_throughput.json

# Batch forward-pass comparison: every zoo model through the training
# Network vs the frozen inference Snapshot at the gateway's 16-row batch;
# the artifact records rows/sec per engine and pins the snapshot's
# zero-alloc steady state (DESIGN.md §10).
bench-forward:
	$(GO) run ./cmd/teamnet-bench -forward -out BENCH_forward.json

# Open-loop direct-vs-gateway serving comparison: Poisson arrivals with
# per-request deadlines against a real master/worker over a 2ms edge link;
# the JSON artifact records the micro-batching goodput win (DESIGN.md §9).
bench-serve:
	$(GO) run ./cmd/teamnet-bench -serve -qps 10000 -duration 3s -out BENCH_serve.json

# Chaos soak: minutes of Poisson load through the full gateway stack while a
# scripted fault timeline stalls, resets and heals workers (stall at t/4,
# reset at t/2, heal at 3t/4). Exits non-zero if any interval records zero
# goodput or tail latency never recovers after the heal (docs/OPERATIONS.md).
bench-soak:
	$(GO) run ./cmd/teamnet-bench -soak -soak-duration 2m -out BENCH_soak.json

# Demand-shaping comparison: the same open-loop Zipf-skewed workload
# through the gateway with the response cache + coalescing off, then on;
# the artifact records the goodput/p99 win and the cache counters
# (DESIGN.md §11).
bench-cache:
	$(GO) run ./cmd/teamnet-bench -cache -duration 3s -out BENCH_cache.json

# Fleet scaling + hot-swap: gateway/master pairs at 1, 2 and 4 under a fixed
# per-pair Poisson rate, masters discovered via announce gossip, one worker
# link stalled and healed mid-run, and a scripted wire hot-swap at 3t/4
# (weights pushed to workers, then masters, gateway cutover last). Exits
# non-zero under 3x aggregate goodput scaling, on any hard-failed request,
# or on any stale-version cache entry after cutover (DESIGN.md §12). Run on
# the reference host before committing the artifact.
bench-fleet:
	$(GO) run ./cmd/teamnet-bench -fleet -out BENCH_fleet.json

# Partial-offload planning sweep: the split planner against exact edgesim
# cost models across three link profiles (campus WiFi, congested uplink,
# LoRa-class trickle). Deterministic and analytic — milliseconds, no wall
# clock. Exits non-zero if the auto plan fails to walk through >= 3 distinct
# split points or loses to a static endpoint past the 5% floor (DESIGN.md
# §13).
bench-split:
	$(GO) run ./cmd/teamnet-bench -split -out BENCH_split.json

# Regression gate: re-run the throughput, serving, demand-shaping, fleet,
# split-planning and forward benchmarks with the committed BENCH_*.json
# configurations and fail on >20% goodput/QPS/rows-per-sec loss, >20% p99
# growth, any snapshot forward allocation, a cache speedup collapse, a fleet
# scaling collapse, any hot-swap failure/stale entry, or a split-plan drift.
# A shorter re-run window keeps the wire benchmarks CI-sized.
bench-check:
	$(GO) run ./cmd/teamnet-bench -check -check-duration 2s

clean:
	$(GO) clean ./...
